//! The durable, content-addressed **cell store** behind crash-safe sweeps.
//!
//! Sweep cells are pure functions of *(spec fingerprint, cell key)* with
//! byte-reproducible outputs, which makes them exactly the shape of a
//! content-addressed work queue: each completed [`CellResult`] persists as
//! one small record file whose **address** is the digest of the pair, whose
//! **integrity** is guarded by an embedded payload checksum, and whose
//! **write** is atomic (temp file + rename) — a crash at any instant leaves
//! either a fully valid record or nothing the next run will trust.
//!
//! On top of the store sit three protocols (all surfaced by the `gdp` CLI
//! and documented in `docs/SCENARIOS.md`):
//!
//! * **resume** — `gdp sweep --store <dir> --resume` looks every cell up
//!   before computing it; verified-complete records are reused, missing or
//!   invalid ones are recomputed, and the final artifacts are byte-identical
//!   to an uninterrupted run (enforced by the kill-and-resume fault-injection
//!   suite in `tests/sweep_resume_fault_injection.rs`);
//! * **sharding** — [`ShardSpec`] (`--shard i/n`) deterministically
//!   partitions the expanded grid by cell position, so `n` processes or CI
//!   jobs fill one shared (or per-shard) store cooperatively;
//! * **merge** — [`merge_stores`] (`gdp merge`) fuses shard stores back
//!   into the same [`SweepReport`] an unsharded run would have produced,
//!   byte for byte, without recomputing anything.
//!
//! ## Integrity model
//!
//! Records that fail **any** validation step are never trusted and never
//! fatal: they are moved into the store's `quarantine/` directory (tagged
//! with the failure reason) and the cell is transparently recomputed.
//! Validation layers, in order:
//!
//! 1. the format banner (`gdp-cell-store v2`) — foreign, stale-format or
//!    future files;
//! 2. the spec fingerprint — records from a *stale or different spec*
//!    (other adversary, trial budget, step budget, seed policy or
//!    exact-check budget) are invisible to this spec's lookups by
//!    addressing, and quarantined if a hash collision or hand-rename ever
//!    routes one here;
//! 3. the declared payload byte length — truncated (torn) writes;
//! 4. the FNV-1a payload checksum — bit flips anywhere in the payload;
//! 5. strict payload parsing plus a cell-key cross-check — tampered or
//!    mis-addressed records.
//!
//! The digests are deliberately **not** [`gdp_sim::fingerprint64`]: store
//! records persist across builds, so they sit on a fixed, documented
//! FNV-1a implementation in this module rather than on whatever the
//! in-memory state-fingerprint hasher evolves into (the same reasoning that
//! keeps sweep seed derivation on `SipHash`, see `crate::spec`).

use crate::report::{decode_cell_payload, encode_cell_payload, SweepReport};
use crate::runner::CellResult;
use crate::spec::ScenarioSpec;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The format banner every record starts with; bump the version when the
/// record layout or payload schema changes and old records become
/// untrustworthy.  v2 added the `first_meal_p50/p90/p99` payload fields;
/// v1 records quarantine and recompute, by design.
pub const STORE_FORMAT: &str = "gdp-cell-store v2";

/// 64-bit FNV-1a over raw bytes: the store's persistent digest for record
/// addresses, spec fingerprints and payload checksums.  Chosen for being
/// trivially reimplementable from its spec (the store outlives any one
/// build of this workspace) and strong enough for its two jobs here —
/// corruption *detection* (not tamper resistance) and address dispersion.
#[must_use]
pub fn stable_digest64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Counters describing how a store-backed sweep or merge sourced its
/// cells.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Cells satisfied by a verified-complete store record.
    pub reused: u64,
    /// Cells computed (and, when a store is attached, persisted).
    pub computed: u64,
    /// Invalid records detected, quarantined and *not* trusted.
    pub quarantined: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reused, {} computed, {} quarantined",
            self.reused, self.computed, self.quarantined
        )
    }
}

/// The outcome of one store lookup.
#[derive(Debug)]
pub enum StoreLookup {
    /// No record exists for this cell.
    Absent,
    /// A fully verified record was found.
    Hit(Box<CellResult>),
    /// A record existed but failed validation; it has been moved to the
    /// quarantine directory and must be recomputed.
    Quarantined {
        /// Which validation layer rejected it.
        reason: &'static str,
    },
}

/// A durable, content-addressed store of completed sweep cells.
///
/// Open one with [`CellStore::open`]; the directory layout is
///
/// ```text
/// <dir>/
///   cells/<cell-key-sanitized>-<16-hex address>.cell   one record per cell
///   quarantine/<record name>.<reason>                  rejected records
///   spec-<16-hex fingerprint>.context                  human-readable context
/// ```
///
/// Records of *different* spec fingerprints coexist in one directory
/// without interference (the fingerprint is part of every address), so
/// shards — and even unrelated sweeps — may share a store.
#[derive(Debug)]
pub struct CellStore {
    cells_dir: PathBuf,
    quarantine_dir: PathBuf,
    fingerprint: u64,
    swept_tmp: u64,
}

impl CellStore {
    /// Opens (creating if needed) the store at `dir` for the given spec and
    /// exact-check budget, and records the spec's store context alongside
    /// the records for debuggability.
    ///
    /// Opening also **sweeps stale temp files**: a SIGKILLed writer leaves
    /// its `*.tmp.*` scratch file behind (invisible to lookups, but
    /// accumulating forever), so every open deletes them.  A *live* writer
    /// in another process whose temp file is swept out from under it is
    /// still safe: [`save`](Self::save) falls back to the already-renamed
    /// record when its rename loses the race (see the concurrent-writer
    /// semantics on `save`).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and context-write I/O errors.
    pub fn open(
        dir: impl AsRef<Path>,
        spec: &ScenarioSpec,
        exact_check: Option<usize>,
    ) -> std::io::Result<CellStore> {
        let root = dir.as_ref().to_path_buf();
        let cells_dir = root.join("cells");
        let quarantine_dir = root.join("quarantine");
        std::fs::create_dir_all(&cells_dir)?;
        std::fs::create_dir_all(&quarantine_dir)?;
        let swept_tmp = sweep_stale_tmp_files(&root) + sweep_stale_tmp_files(&cells_dir);
        let context = spec.store_context(exact_check);
        let fingerprint = stable_digest64(context.as_bytes());
        // A per-fingerprint context note: deterministic bytes, atomically
        // written, so concurrent shards racing on it are harmless.
        let context_path = root.join(format!("spec-{fingerprint:016x}.context"));
        if !context_path.exists() {
            write_atomically(&context_path, format!("{context}\n").as_bytes())?;
        }
        Ok(CellStore {
            cells_dir,
            quarantine_dir,
            fingerprint,
            swept_tmp,
        })
    }

    /// How many stale `*.tmp.*` files this handle's open swept away
    /// (leftovers of SIGKILLed writers; see [`open`](Self::open)).
    #[must_use]
    pub fn swept_tmp(&self) -> u64 {
        self.swept_tmp
    }

    /// The spec fingerprint this store handle addresses records under.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The quarantine directory (rejected records end up here).
    #[must_use]
    pub fn quarantine_dir(&self) -> &Path {
        &self.quarantine_dir
    }

    /// The record path for `cell_key` under this store's fingerprint.
    #[must_use]
    pub fn record_path(&self, cell_key: &str) -> PathBuf {
        let address = stable_digest64(format!("{:016x}|{cell_key}", self.fingerprint).as_bytes());
        let sanitized: String = cell_key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.cells_dir
            .join(format!("{sanitized}-{address:016x}.cell"))
    }

    /// Persists one completed cell **atomically**: the full record is
    /// written to a temp file in the same directory and renamed into place,
    /// so a crash at any instant leaves either the previous state or the
    /// complete new record — never a half-written one under the final name.
    ///
    /// **Concurrent-writer semantics** (serve workers, shards and resumed
    /// sweeps may share one store directory): records are pure functions of
    /// the address, so two writers racing on the same cell must *converge*,
    /// never error.  Temp names embed the pid **and** a process-wide
    /// sequence number, so concurrent saves never collide on scratch files;
    /// both renames land the same bytes (last one wins, harmlessly).  If
    /// this writer's rename fails — e.g. a concurrent [`open`](Self::open)
    /// swept its temp file — the save still succeeds when the final name
    /// already holds the byte-identical record the race partner renamed
    /// into place.  A valid record with *different* bytes is a determinism
    /// violation and fails loudly instead.
    ///
    /// The wall-clock `steps_per_sec` field is not persisted (stored cells
    /// are always the byte-reproducible shape).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the write or the rename (unless the
    /// convergence rule above resolves them), and reports
    /// [`std::io::ErrorKind::InvalidData`] when a concurrent writer
    /// deposited a valid record that disagrees byte-for-byte.
    pub fn save(&self, result: &CellResult) -> std::io::Result<PathBuf> {
        let payload = encode_cell_payload(result);
        let record = format!(
            "{STORE_FORMAT}\nspec {:016x}\ncell {}\npayload {} {:016x}\n---\n{payload}",
            self.fingerprint,
            result.cell,
            payload.len(),
            stable_digest64(payload.as_bytes()),
        );
        let path = self.record_path(&result.cell);
        match write_atomically(&path, record.as_bytes()) {
            Ok(()) => Ok(path),
            Err(e) => match std::fs::read_to_string(&path) {
                // A concurrent writer finished first.  Identical bytes:
                // converged, the record is in place, nothing to do.
                Ok(existing) if existing == record => Ok(path),
                // A *valid* record that disagrees is a determinism
                // violation — surface it, never shrug it off.
                Ok(existing)
                    if verify_record(&existing, self.fingerprint, &result.cell).is_ok() =>
                {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "concurrent writer stored different bytes for cell {} \
                             (determinism violation)",
                            result.cell
                        ),
                    ))
                }
                _ => Err(e),
            },
        }
    }

    /// Looks `cell_key` up, verifying every integrity layer; invalid
    /// records are quarantined (moved, tagged with the reason) and reported
    /// as [`StoreLookup::Quarantined`] so the caller recomputes.
    #[must_use]
    pub fn lookup(&self, cell_key: &str) -> StoreLookup {
        let path = self.record_path(cell_key);
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return StoreLookup::Absent,
            // Unreadable (permissions, non-UTF-8, ...): treat as invalid.
            Err(_) => return self.quarantine(&path, "unreadable"),
        };
        match verify_record(&raw, self.fingerprint, cell_key) {
            Ok(result) => StoreLookup::Hit(Box::new(result)),
            Err(reason) => self.quarantine(&path, reason),
        }
    }

    /// Moves a rejected record out of the addressable space.  Repeat
    /// quarantines of the same record name get a numeric suffix
    /// (`<name>.<reason>`, `<name>.<reason>.2`, ...) so earlier evidence is
    /// never silently overwritten.  Best-effort: if the move fails the
    /// record is deleted instead, and if even that fails the next lookup
    /// will simply re-reject it.
    fn quarantine(&self, path: &Path, reason: &'static str) -> StoreLookup {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "record".to_string());
        let mut target = self.quarantine_dir.join(format!("{name}.{reason}"));
        let mut attempt = 1u32;
        while target.exists() && attempt < 10_000 {
            attempt += 1;
            target = self
                .quarantine_dir
                .join(format!("{name}.{reason}.{attempt}"));
        }
        if std::fs::rename(path, &target).is_err() {
            let _ = std::fs::remove_file(path);
        }
        StoreLookup::Quarantined { reason }
    }
}

/// Deletes every stale `*.tmp.*` scratch file directly under `dir`
/// (non-recursively) and returns how many were removed.  Scratch files are
/// only ever meaningful to the writer that created them; any still on disk
/// at open time belonged to a writer that died before its rename.
fn sweep_stale_tmp_files(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
        if is_file && name.contains(".tmp.") && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// Process-wide counter distinguishing concurrent writers *within* one
/// process (serve workers, test threads): the pid alone cannot.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the target directory,
/// flush, then rename over the final name.  The temp name embeds pid and a
/// process-wide sequence number so concurrent writers never share scratch
/// files (two threads interleaving writes into one temp file would tear
/// it).
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.flush()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Runs every validation layer over one raw record.  Returns the decoded
/// result or the (static) reason the record must be quarantined.
fn verify_record(raw: &str, fingerprint: u64, cell_key: &str) -> Result<CellResult, &'static str> {
    let Some((header, payload)) = raw.split_once("\n---\n") else {
        return Err("truncated-header");
    };
    let mut lines = header.lines();
    if lines.next() != Some(STORE_FORMAT) {
        return Err("format");
    }
    let Some(spec_line) = lines.next().and_then(|l| l.strip_prefix("spec ")) else {
        return Err("format");
    };
    if u64::from_str_radix(spec_line, 16) != Ok(fingerprint) {
        return Err("stale-spec");
    }
    let Some(cell_line) = lines.next().and_then(|l| l.strip_prefix("cell ")) else {
        return Err("format");
    };
    if cell_line != cell_key {
        return Err("cell-key");
    }
    let Some((len, digest)) = lines
        .next()
        .and_then(|l| l.strip_prefix("payload "))
        .and_then(|l| l.split_once(' '))
    else {
        return Err("format");
    };
    if lines.next().is_some() {
        return Err("format");
    }
    if len.parse() != Ok(payload.len()) {
        return Err("truncated-payload");
    }
    if u64::from_str_radix(digest, 16) != Ok(stable_digest64(payload.as_bytes())) {
        return Err("checksum");
    }
    let result = decode_cell_payload(payload).map_err(|_| "payload")?;
    if result.cell != cell_key {
        return Err("cell-key");
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

/// A deterministic 1-based partition of the expanded grid: shard `i/n` owns
/// every cell whose expansion position `p` satisfies `p % n == i - 1`.
/// Partitioning is by *position*, not by key hash, so the `n` shards are
/// balanced to within one cell and their union is exactly the grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index, `1 ..= count`.
    pub index: usize,
    /// Total number of shards (≥ 1).
    pub count: usize,
}

impl ShardSpec {
    /// The trivial partition that owns every cell.
    #[must_use]
    pub fn full() -> Self {
        ShardSpec { index: 1, count: 1 }
    }

    /// Whether this shard owns the cell at expansion position `position`
    /// (0-based).
    #[must_use]
    pub fn owns(&self, position: usize) -> bool {
        position % self.count == self.index - 1
    }

    /// The canonical `i/n` spec string.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }
}

/// Error parsing a `--shard i/n` spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseShardError(String);

impl fmt::Display for ParseShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}; usage: --shard <i>/<n> with 1 <= i <= n", self.0)
    }
}

impl std::error::Error for ParseShardError {}

impl std::str::FromStr for ShardSpec {
    type Err = ParseShardError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let Some((index, count)) = s.split_once('/') else {
            return Err(ParseShardError(format!(
                "shard spec {s:?} is not of the form i/n"
            )));
        };
        let index: usize = index
            .parse()
            .map_err(|_| ParseShardError(format!("shard index {index:?} is not a number")))?;
        let count: usize = count
            .parse()
            .map_err(|_| ParseShardError(format!("shard count {count:?} is not a number")))?;
        if count == 0 {
            return Err(ParseShardError("shard count must be >= 1".to_string()));
        }
        if index == 0 || index > count {
            return Err(ParseShardError(format!(
                "shard index {index} is outside 1..={count} (shards are 1-based)"
            )));
        }
        Ok(ShardSpec { index, count })
    }
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

/// Error produced by [`merge_stores`].
#[derive(Debug)]
pub enum MergeError {
    /// The spec expands to an empty grid.
    EmptyGrid,
    /// At least one cell of the grid has no valid record in any store.
    Missing {
        /// The missing cell keys, in expansion order.
        cells: Vec<String>,
    },
    /// Two stores hold *valid* records for the same cell that disagree on
    /// the payload bytes.  Cells are pure functions of their address, so
    /// this is a determinism-violation signal (diverging builds, tampered
    /// records that still checksum, or mismatched shard provenance) — never
    /// something a merge may paper over by picking one.
    Mismatch {
        /// The cell whose records disagree.
        cell: String,
        /// 0-based index (into the `stores` argument) of the first store
        /// consulted.
        first_store: usize,
        /// 0-based index of the store that disagreed with it.
        other_store: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::EmptyGrid => write!(f, "the scenario grid is empty"),
            MergeError::Missing { cells } => {
                let shown: Vec<&str> = cells.iter().take(8).map(String::as_str).collect();
                write!(
                    f,
                    "{} of the grid's cells have no valid store record: {}{}",
                    cells.len(),
                    shown.join(", "),
                    if cells.len() > shown.len() {
                        format!(" (+{} more)", cells.len() - shown.len())
                    } else {
                        String::new()
                    }
                )
            }
            MergeError::Mismatch {
                cell,
                first_store,
                other_store,
            } => write!(
                f,
                "stores #{} and #{} hold valid records for cell {cell} that disagree \
                 byte-for-byte — cells are pure functions of (spec, key), so this is a \
                 determinism violation, not a cache conflict",
                first_store + 1,
                other_store + 1,
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Fuses one or more (shard) stores into the [`SweepReport`] the equivalent
/// unsharded run would have produced — byte for byte, without recomputing
/// anything.  Every cell of the spec's expansion is looked up in **every**
/// store; records are pure functions of the address, so all valid
/// candidates must be byte-identical — a disagreement aborts the merge with
/// [`MergeError::Mismatch`] (a determinism-violation signal, never resolved
/// by first-hit-wins).  Invalid records are quarantined as usual and do not
/// count as candidates.
///
/// # Errors
///
/// [`MergeError::Missing`] when any cell has no valid record anywhere;
/// [`MergeError::Mismatch`] when two stores' valid records for one cell
/// disagree; [`MergeError::EmptyGrid`] when the spec expands to nothing.
pub fn merge_stores(
    spec: &ScenarioSpec,
    stores: &[CellStore],
) -> Result<(SweepReport, StoreStats), MergeError> {
    let cells = spec.expand();
    if cells.is_empty() {
        return Err(MergeError::EmptyGrid);
    }
    let mut stats = StoreStats::default();
    let mut results = Vec::with_capacity(cells.len());
    let mut missing = Vec::new();
    for cell in &cells {
        let mut found: Option<(usize, CellResult, String)> = None;
        for (index, store) in stores.iter().enumerate() {
            match store.lookup(&cell.key) {
                StoreLookup::Hit(result) => {
                    let payload = encode_cell_payload(&result);
                    match &found {
                        None => found = Some((index, *result, payload)),
                        Some((first_store, _, first_payload)) => {
                            if payload != *first_payload {
                                return Err(MergeError::Mismatch {
                                    cell: cell.key.clone(),
                                    first_store: *first_store,
                                    other_store: index,
                                });
                            }
                        }
                    }
                }
                StoreLookup::Quarantined { .. } => stats.quarantined += 1,
                StoreLookup::Absent => {}
            }
        }
        match found {
            Some((_, result, _)) => {
                stats.reused += 1;
                results.push(result);
            }
            None => missing.push(cell.key.clone()),
        }
    }
    if !missing.is_empty() {
        return Err(MergeError::Missing { cells: missing });
    }
    Ok((SweepReport::new(spec, results), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_sweep, run_sweep_durable, SweepOptions};
    use crate::spec::SeedPolicy;

    fn test_spec(tag: &str) -> ScenarioSpec {
        ScenarioSpec::new(tag)
            .with_families_str("ring,star")
            .unwrap()
            .with_sizes([4])
            .with_algorithms_str("gdp1,lr1")
            .unwrap()
            .with_trials(3)
            .with_max_steps(4_000)
            .with_seed_policy(SeedPolicy::PerCell(9))
    }

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gdp_store_test_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn completed_store(tag: &str) -> (ScenarioSpec, CellStore, PathBuf) {
        let spec = test_spec(tag);
        let dir = temp_store_dir(tag);
        let store = CellStore::open(&dir, &spec, None).unwrap();
        let (_, stats) = run_sweep_durable(
            &spec,
            &SweepOptions::quiet(),
            Some(&store),
            true,
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(stats.computed, 4);
        (spec, store, dir)
    }

    #[test]
    fn save_lookup_round_trip_is_exact_and_atomic() {
        let (spec, store, dir) = completed_store("roundtrip");
        let reference = run_sweep(&spec, &SweepOptions::quiet()).unwrap();
        for cell in &reference.cells {
            match store.lookup(&cell.cell) {
                StoreLookup::Hit(stored) => assert_eq!(*stored, *cell),
                other => panic!("expected hit for {}: {other:?}", cell.cell),
            }
        }
        // No temp files survive a clean save.
        let stray: Vec<_> = std::fs::read_dir(dir.join("cells"))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| !name.ends_with(".cell"))
            .collect();
        assert!(stray.is_empty(), "stray files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_is_absent_for_unknown_cells_and_other_fingerprints() {
        let (spec, store, dir) = completed_store("absent");
        assert!(matches!(store.lookup("ring/n99/GDP1"), StoreLookup::Absent));
        // A store handle opened for a *different* spec sees nothing: the
        // fingerprint participates in every address.
        let other = CellStore::open(&dir, &spec.clone().with_trials(99), None).unwrap();
        assert!(matches!(other.lookup("ring/n4/GDP1"), StoreLookup::Absent));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The corruption gauntlet: truncation, bit flips, fingerprint
    /// mismatches and stale-spec records are each detected, quarantined
    /// (never silently reused) and then transparently recomputed.
    #[test]
    fn corrupt_records_are_quarantined_and_recomputed_never_reused() {
        type Corruption<'a> = (&'a str, &'a dyn Fn(&Path));
        let cases: &[Corruption] = &[
            ("truncate", &|path| {
                let raw = std::fs::read(path).unwrap();
                std::fs::write(path, &raw[..raw.len() / 2]).unwrap();
            }),
            ("bitflip", &|path| {
                let mut raw = std::fs::read(path).unwrap();
                let target = raw.len() - 20; // somewhere inside the payload
                raw[target] ^= 0x04;
                std::fs::write(path, raw).unwrap();
            }),
            ("fingerprint", &|path| {
                let raw = std::fs::read_to_string(path).unwrap();
                let stale = raw
                    .lines()
                    .map(|l| {
                        if l.starts_with("spec ") {
                            "spec 00000000deadbeef".to_string()
                        } else {
                            l.to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
                    + "\n";
                std::fs::write(path, stale).unwrap();
            }),
        ];
        for (tag, corrupt) in cases {
            let (spec, store, dir) = completed_store(&format!("corrupt_{tag}"));
            let key = "ring/n4/GDP1";
            let path = store.record_path(key);
            corrupt(&path);
            // The resumed sweep itself detects the damage, quarantines the
            // record, recomputes exactly that cell, and ends up identical
            // to a clean run.
            let (report, stats) = run_sweep_durable(
                &spec,
                &SweepOptions::quiet(),
                Some(&store),
                true,
                None,
                |_| {},
            )
            .unwrap();
            assert!(
                std::fs::read_dir(store.quarantine_dir()).unwrap().count() >= 1,
                "{tag}: quarantine must hold the rejected record"
            );
            assert_eq!(stats.reused, 3, "{tag}");
            assert_eq!(stats.computed, 1, "{tag}");
            assert_eq!(stats.quarantined, 1, "{tag}");
            assert_eq!(
                report,
                run_sweep(&spec, &SweepOptions::quiet()).unwrap(),
                "{tag}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn records_renamed_onto_the_wrong_address_are_rejected() {
        let (_, store, dir) = completed_store("wrongkey");
        // Rename LR1's record onto GDP1's address: the embedded cell key no
        // longer matches the lookup.
        std::fs::rename(
            store.record_path("ring/n4/LR1"),
            store.record_path("ring/n4/GDP1"),
        )
        .unwrap();
        assert!(matches!(
            store.lookup("ring/n4/GDP1"),
            StoreLookup::Quarantined { reason: "cell-key" }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_specs_parse_partition_and_reject_malformed_input() {
        let shard: ShardSpec = "2/3".parse().unwrap();
        assert_eq!(shard, ShardSpec { index: 2, count: 3 });
        assert_eq!(shard.name(), "2/3");
        // Every position is owned by exactly one shard of the partition.
        for count in 1..=4usize {
            for position in 0..24 {
                let owners = (1..=count)
                    .filter(|&index| ShardSpec { index, count }.owns(position))
                    .count();
                assert_eq!(owners, 1, "position {position} of {count} shards");
            }
        }
        for bad in ["", "3", "0/4", "5/4", "a/b", "1/0", "-1/2", "1/2/3"] {
            let err = bad.parse::<ShardSpec>().unwrap_err();
            assert!(err.to_string().contains("usage: --shard"), "{bad}: {err}");
        }
    }

    #[test]
    fn merge_reconstructs_the_unsharded_report_and_names_missing_cells() {
        let spec = test_spec("merge");
        let reference = run_sweep(&spec, &SweepOptions::quiet()).unwrap();
        let dir_a = temp_store_dir("merge_a");
        let dir_b = temp_store_dir("merge_b");
        let store_a = CellStore::open(&dir_a, &spec, None).unwrap();
        let store_b = CellStore::open(&dir_b, &spec, None).unwrap();
        let shard = |i| Some(ShardSpec { index: i, count: 2 });
        run_sweep_durable(
            &spec,
            &SweepOptions::quiet(),
            Some(&store_a),
            false,
            shard(1),
            |_| {},
        )
        .unwrap();
        // Merging half the grid fails loudly, naming what is missing.
        let err =
            merge_stores(&spec, &[CellStore::open(&dir_a, &spec, None).unwrap()]).unwrap_err();
        assert!(err.to_string().contains("ring/n4/LR1"), "{err}");
        run_sweep_durable(
            &spec,
            &SweepOptions::quiet(),
            Some(&store_b),
            false,
            shard(2),
            |_| {},
        )
        .unwrap();
        let (merged, stats) = merge_stores(
            &spec,
            &[
                CellStore::open(&dir_a, &spec, None).unwrap(),
                CellStore::open(&dir_b, &spec, None).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(merged, reference);
        assert_eq!(merged.to_json(), reference.to_json());
        assert_eq!(merged.to_csv(), reference.to_csv());
        assert_eq!(stats.reused, 4);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open_without_touching_records() {
        let (spec, store, dir) = completed_store("tmpsweep");
        // Leftovers of SIGKILLed writers: scratch files in the cells dir
        // and next to the context note in the root.
        let stale_cell_tmp = dir.join("cells").join("ring_n4_GDP1-feed.tmp.12345.0");
        let stale_root_tmp = dir.join("spec-0000000000000000.tmp.12345.1");
        std::fs::write(&stale_cell_tmp, b"half a record").unwrap();
        std::fs::write(&stale_root_tmp, b"half a context").unwrap();
        drop(store);
        let reopened = CellStore::open(&dir, &spec, None).unwrap();
        assert_eq!(reopened.swept_tmp(), 2, "both stale scratch files swept");
        assert!(!stale_cell_tmp.exists());
        assert!(!stale_root_tmp.exists());
        // Real records are untouched and still verify.
        assert!(matches!(
            reopened.lookup("ring/n4/GDP1"),
            StoreLookup::Hit(_)
        ));
        // A second open has nothing left to sweep.
        assert_eq!(CellStore::open(&dir, &spec, None).unwrap().swept_tmp(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_on_the_same_cell_converge_without_error() {
        let (_spec, store, dir) = completed_store("concurrent");
        let result = match store.lookup("ring/n4/GDP1") {
            StoreLookup::Hit(result) => *result,
            other => panic!("expected hit: {other:?}"),
        };
        // Many threads hammering the same cell address: every save must
        // succeed (identical bytes converge) and the record stays valid.
        let store = std::sync::Arc::new(store);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let store = store.clone();
                let result = result.clone();
                scope.spawn(move || {
                    for _ in 0..16 {
                        store.save(&result).expect("concurrent save converges");
                    }
                });
            }
        });
        match store.lookup("ring/n4/GDP1") {
            StoreLookup::Hit(stored) => assert_eq!(*stored, result),
            other => panic!("record must survive the stampede: {other:?}"),
        }
        // A concurrent writer that would deposit *different* bytes for the
        // same address is a determinism violation, not a convergence case.
        let mut evil = result.clone();
        evil.mean_hunger += 1.0;
        let record_path = store.record_path("ring/n4/GDP1");
        let spec_fp = store.fingerprint();
        let evil_payload = crate::report::encode_cell_payload(&evil);
        let evil_record = format!(
            "{STORE_FORMAT}\nspec {spec_fp:016x}\ncell {}\npayload {} {:016x}\n---\n{evil_payload}",
            evil.cell,
            evil_payload.len(),
            stable_digest64(evil_payload.as_bytes()),
        );
        std::fs::write(&record_path, evil_record).unwrap();
        // Simulate "my rename lost" by making the scratch dir read-only?
        // Portable shortcut: call the convergence check directly through
        // save() after making the temp write fail is not portable, so
        // instead assert the weaker, still-load-bearing property: saving
        // over a valid-but-different record succeeds by *replacing* it
        // (rename wins), restoring the canonical bytes.
        store.save(&result).unwrap();
        match store.lookup("ring/n4/GDP1") {
            StoreLookup::Hit(stored) => assert_eq!(*stored, result),
            other => panic!("canonical record must win: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeat_quarantines_of_one_record_name_keep_all_evidence() {
        let (_, store, dir) = completed_store("requarantine");
        let path = store.record_path("ring/n4/GDP1");
        // First corruption: quarantined under <name>.<reason>.
        std::fs::write(&path, "garbage one").unwrap();
        assert!(matches!(
            store.lookup("ring/n4/GDP1"),
            StoreLookup::Quarantined { .. }
        ));
        // Second corruption of the same record name: a numeric suffix
        // disambiguates instead of overwriting the earlier evidence.
        std::fs::write(&path, "garbage two").unwrap();
        assert!(matches!(
            store.lookup("ring/n4/GDP1"),
            StoreLookup::Quarantined { .. }
        ));
        let evidence: Vec<String> = std::fs::read_dir(store.quarantine_dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(
            evidence.len(),
            2,
            "both corrupt snapshots must be preserved: {evidence:?}"
        );
        let contents: Vec<String> = evidence
            .iter()
            .map(|name| std::fs::read_to_string(store.quarantine_dir().join(name)).unwrap())
            .collect();
        assert!(
            contents.contains(&"garbage one".to_string()),
            "{contents:?}"
        );
        assert!(
            contents.contains(&"garbage two".to_string()),
            "{contents:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_detects_disagreeing_valid_records_as_determinism_violation() {
        let spec = test_spec("mismatch");
        let dir_a = temp_store_dir("mismatch_a");
        let dir_b = temp_store_dir("mismatch_b");
        for dir in [&dir_a, &dir_b] {
            let store = CellStore::open(dir, &spec, None).unwrap();
            run_sweep_durable(
                &spec,
                &SweepOptions::quiet(),
                Some(&store),
                false,
                None,
                |_| {},
            )
            .unwrap();
        }
        // Replace one of store B's records with a *valid* record whose
        // payload disagrees — the shape a diverged build or tampered shard
        // would produce.
        let store_b = CellStore::open(&dir_b, &spec, None).unwrap();
        let mut diverged = match store_b.lookup("ring/n4/GDP1") {
            StoreLookup::Hit(result) => *result,
            other => panic!("expected hit: {other:?}"),
        };
        diverged.mean_hunger += 1.0;
        store_b.save(&diverged).unwrap();
        let stores = [
            CellStore::open(&dir_a, &spec, None).unwrap(),
            CellStore::open(&dir_b, &spec, None).unwrap(),
        ];
        let err = merge_stores(&spec, &stores).unwrap_err();
        match &err {
            MergeError::Mismatch {
                cell,
                first_store,
                other_store,
            } => {
                assert_eq!(cell, "ring/n4/GDP1");
                assert_eq!((*first_store, *other_store), (0, 1));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("determinism violation"), "{err}");
        // Repairing store B restores the merge.
        let canonical = match stores[0].lookup("ring/n4/GDP1") {
            StoreLookup::Hit(result) => *result,
            other => panic!("expected hit: {other:?}"),
        };
        stores[1].save(&canonical).unwrap();
        let (merged, stats) = merge_stores(&spec, &stores).unwrap();
        assert_eq!(merged.cells.len(), 4);
        assert_eq!(stats.reused, 4);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn stable_digest_is_pinned_across_builds() {
        // FNV-1a test vectors: the digest addresses on-disk records, so it
        // must never drift between builds.
        assert_eq!(stable_digest64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_digest64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_digest64(b"foobar"), 0x85944171f73967e8);
    }
}
