//! The durable, content-addressed **cell store** behind crash-safe sweeps
//! and the certificate cache behind warm `gdp check` runs.
//!
//! Sweep cells are pure functions of *(spec fingerprint, cell key)* with
//! byte-reproducible outputs, which makes them exactly the shape of a
//! content-addressed work queue: each completed [`CellResult`] persists as
//! one small record file whose **address** is the digest of the pair, whose
//! **integrity** is guarded by an embedded payload checksum, and whose
//! **write** is atomic (temp file + rename) — a crash at any instant leaves
//! either a fully valid record or nothing the next run will trust.
//!
//! Exact verdicts share that shape: a `gdp-mcheck` certificate is a pure,
//! byte-reproducible function of *(check spec, topology cell)*, so the
//! store holds a second record kind — **certificate records** under
//! `certs/`, keyed by *(check-spec fingerprint, cell key @ topology seed)*
//! and carrying the full certificate bytes plus the derived
//! verdict/progress-probability/state-count columns — under the same
//! checksum, quarantine and atomic-write discipline as MC cells.
//!
//! On top of the store sit five protocols (all surfaced by the `gdp` CLI
//! and documented in `docs/SCENARIOS.md`):
//!
//! * **resume** — `gdp sweep --store <dir> --resume` looks every cell up
//!   before computing it; verified-complete records are reused, missing or
//!   invalid ones are recomputed, and the final artifacts are byte-identical
//!   to an uninterrupted run (enforced by the kill-and-resume fault-injection
//!   suite in `tests/sweep_resume_fault_injection.rs`);
//! * **certificate cache** — `gdp check --store <dir> --resume` (and the
//!   exact columns of `sweep --check`) answer warm runs from certificate
//!   records, bitwise identical to recomputation (see
//!   `crate::check::run_check_cached`);
//! * **sharding** — [`ShardSpec`] (`--shard i/n`) deterministically
//!   partitions the expanded grid by cell position, so `n` processes or CI
//!   jobs fill one shared (or per-shard) store cooperatively;
//! * **merge** — [`merge_stores`] (`gdp merge`) fuses shard stores back
//!   into the same [`SweepReport`] an unsharded run would have produced,
//!   byte for byte, without recomputing anything;
//! * **lifecycle** — [`gc_store`] (`gdp store gc`) retires records whose
//!   spec context matches nothing in a manifest, and [`compact_store`]
//!   (`gdp store compact`) rewrites live records into a fresh directory —
//!   dropping quarantine debris and stale temp files, round-trip-verifying
//!   every record — before an atomic directory swap.
//!
//! ## Integrity model
//!
//! Records that fail **any** validation step are never trusted and never
//! fatal: they are moved into the store's `quarantine/` directory (tagged
//! with the failure reason) and the cell is transparently recomputed.
//! Validation layers, in order:
//!
//! 1. the format banner (`gdp-cell-store v3`; v2 banners on MC cell
//!    records are still accepted — the cell layout did not change — while
//!    a version *newer* than this build is **rejected loudly** as
//!    [`StoreLookup::Unsupported`], never quarantined: the record is
//!    presumed valid to a newer build and left untouched);
//! 2. the spec fingerprint — records from a *stale or different spec*
//!    (other adversary, trial budget, step budget, seed policy or
//!    exact-check budget) are invisible to this spec's lookups by
//!    addressing, and quarantined if a hash collision or hand-rename ever
//!    routes one here;
//! 3. the declared payload byte length — truncated (torn) writes;
//! 4. the FNV-1a payload checksum — bit flips anywhere in the payload;
//! 5. strict payload parsing plus a cell-key cross-check — tampered or
//!    mis-addressed records (certificate payloads additionally cross-check
//!    the stored verdict columns against the certificates they embed, so a
//!    tampered verdict can never outvote its own certificate).
//!
//! The digests are deliberately **not** [`gdp_sim::fingerprint64`]: store
//! records persist across builds, so they sit on a fixed, documented
//! FNV-1a implementation in this module rather than on whatever the
//! in-memory state-fingerprint hasher evolves into (the same reasoning that
//! keeps sweep seed derivation on `SipHash`, see `crate::spec`).

use crate::check::{decode_check_payload, encode_check_payload, StoredCheck};
use crate::report::{decode_cell_payload, encode_cell_payload, SweepReport};
use crate::runner::CellResult;
use crate::spec::ScenarioSpec;
use gdp_mcheck::Certificate;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The format banner every record starts with; bump the version when the
/// record layout or payload schema changes and old records become
/// untrustworthy.  v3 added certificate records (`kind certificate`
/// headers under `certs/`); the MC cell layout is unchanged, so v2 cell
/// banners are still accepted.  v2 added the `first_meal_p50/p90/p99`
/// payload fields; v1 records quarantine and recompute, by design.
/// Versions *newer* than [`STORE_VERSION`] are rejected loudly
/// ([`StoreLookup::Unsupported`]), never quarantined.
pub const STORE_FORMAT: &str = "gdp-cell-store v3";

/// The previous format banner, still accepted on MC cell records (their
/// layout did not change between v2 and v3).
pub const STORE_FORMAT_V2: &str = "gdp-cell-store v2";

/// The store format version this build reads and writes.
pub const STORE_VERSION: u32 = 3;

/// Parses a `gdp-cell-store v<N>` banner line into its version number.
fn banner_version(line: &str) -> Option<u32> {
    line.strip_prefix("gdp-cell-store v")?.parse().ok()
}

/// 64-bit FNV-1a over raw bytes: the store's persistent digest for record
/// addresses, spec fingerprints and payload checksums.  Chosen for being
/// trivially reimplementable from its spec (the store outlives any one
/// build of this workspace) and strong enough for its two jobs here —
/// corruption *detection* (not tamper resistance) and address dispersion.
#[must_use]
pub fn stable_digest64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Counters describing how a store-backed sweep or merge sourced its
/// cells.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Cells satisfied by a verified-complete store record.
    pub reused: u64,
    /// Cells computed (and, when a store is attached, persisted).
    pub computed: u64,
    /// Invalid records detected, quarantined and *not* trusted.
    pub quarantined: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reused, {} computed, {} quarantined",
            self.reused, self.computed, self.quarantined
        )
    }
}

/// The outcome of one store lookup.
#[derive(Debug)]
pub enum StoreLookup {
    /// No record exists for this cell.
    Absent,
    /// A fully verified record was found.
    Hit(Box<CellResult>),
    /// A record existed but failed validation; it has been moved to the
    /// quarantine directory and must be recomputed.
    Quarantined {
        /// Which validation layer rejected it.
        reason: &'static str,
    },
    /// The record carries a format version **newer** than this build
    /// understands.  It is presumed valid to a newer build, so it is left
    /// exactly where it is — not quarantined, not recomputed over — and
    /// callers must fail loudly instead of silently shadowing it.
    Unsupported {
        /// The record's declared format version.
        version: u32,
    },
}

/// The outcome of one certificate-record lookup.
#[derive(Debug)]
pub enum CertLookup {
    /// No certificate record exists for this key.
    Absent,
    /// A fully verified certificate record was found.
    Hit(Box<StoredCheck>),
    /// A record existed but failed validation; it has been moved to the
    /// quarantine directory and the check must be recomputed.
    Quarantined {
        /// Which validation layer rejected it.
        reason: &'static str,
    },
    /// The record's format version is newer than this build; see
    /// [`StoreLookup::Unsupported`].
    Unsupported {
        /// The record's declared format version.
        version: u32,
    },
}

/// Why a record was rejected: either it must be quarantined, or it belongs
/// to a format version newer than this build and must be left alone.
enum RecordReject {
    Quarantine(&'static str),
    Unsupported(u32),
}

/// A durable, content-addressed store of completed sweep cells and check
/// certificates.
///
/// Open one with [`CellStore::open`]; the directory layout is
///
/// ```text
/// <dir>/
///   cells/<cell-key-sanitized>-<16-hex address>.cell   one record per cell
///   certs/<cert-key-sanitized>-<16-hex address>.cert   one record per check
///   quarantine/<record name>.<reason>                  rejected records
///   spec-<16-hex fingerprint>.context                  sweep context notes
///   check-<16-hex fingerprint>.context                 check context notes
/// ```
///
/// Records of *different* spec fingerprints coexist in one directory
/// without interference (the fingerprint is part of every address), so
/// shards — and even unrelated sweeps — may share a store.
#[derive(Debug)]
pub struct CellStore {
    root: PathBuf,
    cells_dir: PathBuf,
    certs_dir: PathBuf,
    quarantine_dir: PathBuf,
    fingerprint: u64,
    swept_tmp: u64,
}

impl CellStore {
    /// Opens (creating if needed) the store at `dir` for the given spec and
    /// exact-check budget, and records the spec's store context alongside
    /// the records for debuggability.
    ///
    /// Opening also **sweeps stale temp files**: a SIGKILLed writer leaves
    /// its `*.tmp.*` scratch file behind (invisible to lookups, but
    /// accumulating forever), so every open deletes them.  A *live* writer
    /// in another process whose temp file is swept out from under it is
    /// still safe: [`save`](Self::save) falls back to the already-renamed
    /// record when its rename loses the race (see the concurrent-writer
    /// semantics on `save`).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and context-write I/O errors.
    pub fn open(
        dir: impl AsRef<Path>,
        spec: &ScenarioSpec,
        exact_check: Option<usize>,
    ) -> std::io::Result<CellStore> {
        let context = spec.store_context(exact_check);
        let fingerprint = stable_digest64(context.as_bytes());
        let store = CellStore::open_with_fingerprint(dir, fingerprint)?;
        // A per-fingerprint context note: deterministic bytes, atomically
        // written, so concurrent shards racing on it are harmless.
        store.note_context("spec", fingerprint, &context)?;
        Ok(store)
    }

    /// Opens (creating if needed) the store at `dir` **without** a sweep
    /// spec.  A bare handle addresses MC cell records under the null
    /// fingerprint, so it is only meant for certificate records (whose
    /// methods take an explicit check fingerprint) and for lifecycle
    /// tooling — `gdp check --store`, `gdp store gc`, `gdp store compact`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation I/O errors.
    pub fn open_bare(dir: impl AsRef<Path>) -> std::io::Result<CellStore> {
        CellStore::open_with_fingerprint(dir, 0)
    }

    fn open_with_fingerprint(
        dir: impl AsRef<Path>,
        fingerprint: u64,
    ) -> std::io::Result<CellStore> {
        let root = dir.as_ref().to_path_buf();
        let cells_dir = root.join("cells");
        let certs_dir = root.join("certs");
        let quarantine_dir = root.join("quarantine");
        std::fs::create_dir_all(&cells_dir)?;
        std::fs::create_dir_all(&certs_dir)?;
        std::fs::create_dir_all(&quarantine_dir)?;
        let swept_tmp = sweep_stale_tmp_files(&root)
            + sweep_stale_tmp_files(&cells_dir)
            + sweep_stale_tmp_files(&certs_dir);
        Ok(CellStore {
            root,
            cells_dir,
            certs_dir,
            quarantine_dir,
            fingerprint,
            swept_tmp,
        })
    }

    /// Writes a `<prefix>-<16-hex fingerprint>.context` note holding the
    /// human-readable context string a fingerprint was derived from, if one
    /// is not already present.  Context notes double as the vocabulary of
    /// `gdp store gc` manifests: [`gc_store`] retains exactly the records
    /// whose fingerprint matches a manifest line's digest.
    ///
    /// # Errors
    ///
    /// Propagates the atomic write's I/O errors.
    pub fn note_context(
        &self,
        prefix: &str,
        fingerprint: u64,
        context: &str,
    ) -> std::io::Result<()> {
        let path = self
            .root
            .join(format!("{prefix}-{fingerprint:016x}.context"));
        if !path.exists() {
            write_atomically(&path, format!("{context}\n").as_bytes())?;
        }
        Ok(())
    }

    /// How many stale `*.tmp.*` files this handle's open swept away
    /// (leftovers of SIGKILLed writers; see [`open`](Self::open)).
    #[must_use]
    pub fn swept_tmp(&self) -> u64 {
        self.swept_tmp
    }

    /// The spec fingerprint this store handle addresses records under.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The quarantine directory (rejected records end up here).
    #[must_use]
    pub fn quarantine_dir(&self) -> &Path {
        &self.quarantine_dir
    }

    /// The record path for `cell_key` under this store's fingerprint.
    #[must_use]
    pub fn record_path(&self, cell_key: &str) -> PathBuf {
        let address = stable_digest64(format!("{:016x}|{cell_key}", self.fingerprint).as_bytes());
        self.cells_dir
            .join(format!("{}-{address:016x}.cell", sanitize_key(cell_key)))
    }

    /// The certificate-record path for `cert_key` under the given check
    /// fingerprint.  Certificate addresses mix in a `|cert|` tag so they
    /// can never collide with an MC cell address even under equal
    /// fingerprints and keys.
    #[must_use]
    pub fn cert_record_path(&self, check_fingerprint: u64, cert_key: &str) -> PathBuf {
        let address =
            stable_digest64(format!("{check_fingerprint:016x}|cert|{cert_key}").as_bytes());
        self.certs_dir
            .join(format!("{}-{address:016x}.cert", sanitize_key(cert_key)))
    }

    /// Persists one completed cell **atomically**: the full record is
    /// written to a temp file in the same directory and renamed into place,
    /// so a crash at any instant leaves either the previous state or the
    /// complete new record — never a half-written one under the final name.
    ///
    /// **Concurrent-writer semantics** (serve workers, shards and resumed
    /// sweeps may share one store directory): records are pure functions of
    /// the address, so two writers racing on the same cell must *converge*,
    /// never error.  Temp names embed the pid **and** a process-wide
    /// sequence number, so concurrent saves never collide on scratch files;
    /// both renames land the same bytes (last one wins, harmlessly).  If
    /// this writer's rename fails — e.g. a concurrent [`open`](Self::open)
    /// swept its temp file — the save still succeeds when the final name
    /// already holds the byte-identical record the race partner renamed
    /// into place.  A valid record with *different* bytes is a determinism
    /// violation and fails loudly instead.
    ///
    /// The wall-clock `steps_per_sec` field is not persisted (stored cells
    /// are always the byte-reproducible shape).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the write or the rename (unless the
    /// convergence rule above resolves them), and reports
    /// [`std::io::ErrorKind::InvalidData`] when a concurrent writer
    /// deposited a valid record that disagrees byte-for-byte.
    pub fn save(&self, result: &CellResult) -> std::io::Result<PathBuf> {
        let payload = encode_cell_payload(result);
        let record = format!(
            "{STORE_FORMAT}\nspec {:016x}\ncell {}\npayload {} {:016x}\n---\n{payload}",
            self.fingerprint,
            result.cell,
            payload.len(),
            stable_digest64(payload.as_bytes()),
        );
        let path = self.record_path(&result.cell);
        save_converging(&path, &record, &result.cell, &|existing| {
            verify_record(existing, self.fingerprint, &result.cell).is_ok()
        })?;
        Ok(path)
    }

    /// Persists one check's certificates as a certificate record, under the
    /// same atomic-write and concurrent-writer convergence discipline as
    /// [`save`](Self::save).  The record's verdict/progress-probability/
    /// state-count columns are derived from `certificates` by the payload
    /// codec itself, so they can never disagree with the certificate bytes.
    ///
    /// # Errors
    ///
    /// As for [`save`](Self::save): I/O errors, plus `InvalidData` when a
    /// concurrent writer deposited a valid record with different bytes
    /// (a determinism violation — certificates are byte-reproducible).
    pub fn save_certificates(
        &self,
        check_fingerprint: u64,
        cert_key: &str,
        cell: &str,
        certificates: &[Certificate],
    ) -> std::io::Result<PathBuf> {
        let payload = encode_check_payload(cert_key, cell, certificates);
        let record = format!(
            "{STORE_FORMAT}\nkind certificate\nspec {check_fingerprint:016x}\ncell {cert_key}\n\
             payload {} {:016x}\n---\n{payload}",
            payload.len(),
            stable_digest64(payload.as_bytes()),
        );
        let path = self.cert_record_path(check_fingerprint, cert_key);
        save_converging(&path, &record, cert_key, &|existing| {
            verify_cert_record(existing, check_fingerprint, cert_key).is_ok()
        })?;
        Ok(path)
    }

    /// Looks `cell_key` up, verifying every integrity layer; invalid
    /// records are quarantined (moved, tagged with the reason) and reported
    /// as [`StoreLookup::Quarantined`] so the caller recomputes.
    #[must_use]
    pub fn lookup(&self, cell_key: &str) -> StoreLookup {
        let path = self.record_path(cell_key);
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return StoreLookup::Absent,
            // Unreadable (permissions, non-UTF-8, ...): treat as invalid.
            Err(_) => {
                self.quarantine(&path, "unreadable");
                return StoreLookup::Quarantined {
                    reason: "unreadable",
                };
            }
        };
        match verify_record(&raw, self.fingerprint, cell_key) {
            Ok(result) => StoreLookup::Hit(Box::new(result)),
            Err(RecordReject::Unsupported(version)) => StoreLookup::Unsupported { version },
            Err(RecordReject::Quarantine(reason)) => {
                self.quarantine(&path, reason);
                StoreLookup::Quarantined { reason }
            }
        }
    }

    /// Looks up the certificate record for `(check_fingerprint, cert_key)`
    /// with the same integrity layers and quarantine discipline as
    /// [`lookup`](Self::lookup).
    #[must_use]
    pub fn lookup_certificates(&self, check_fingerprint: u64, cert_key: &str) -> CertLookup {
        let path = self.cert_record_path(check_fingerprint, cert_key);
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CertLookup::Absent,
            Err(_) => {
                self.quarantine(&path, "unreadable");
                return CertLookup::Quarantined {
                    reason: "unreadable",
                };
            }
        };
        match verify_cert_record(&raw, check_fingerprint, cert_key) {
            Ok(stored) => CertLookup::Hit(Box::new(stored)),
            Err(RecordReject::Unsupported(version)) => CertLookup::Unsupported { version },
            Err(RecordReject::Quarantine(reason)) => {
                self.quarantine(&path, reason);
                CertLookup::Quarantined { reason }
            }
        }
    }

    /// Moves a rejected record out of the addressable space.  Repeat
    /// quarantines of the same record name get a numeric suffix
    /// (`<name>.<reason>`, `<name>.<reason>.2`, ...) so earlier evidence is
    /// never silently overwritten.  Best-effort: if the move fails the
    /// record is deleted instead, and if even that fails the next lookup
    /// will simply re-reject it.
    fn quarantine(&self, path: &Path, reason: &'static str) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "record".to_string());
        let mut target = self.quarantine_dir.join(format!("{name}.{reason}"));
        let mut attempt = 1u32;
        while target.exists() && attempt < 10_000 {
            attempt += 1;
            target = self
                .quarantine_dir
                .join(format!("{name}.{reason}.{attempt}"));
        }
        if std::fs::rename(path, &target).is_err() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Sanitizes a record key into its filename stem: alphanumerics, `-` and
/// `.` survive, everything else becomes `_` (the 16-hex address suffix
/// keeps distinct keys distinct even when sanitization collides).
fn sanitize_key(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The shared atomic-write-plus-convergence protocol behind both record
/// kinds: write atomically; on failure, an already-present byte-identical
/// record means a concurrent writer won harmlessly, while a *valid* record
/// with different bytes is a determinism violation surfaced as
/// `InvalidData`.
fn save_converging(
    path: &Path,
    record: &str,
    key: &str,
    is_valid: &dyn Fn(&str) -> bool,
) -> std::io::Result<()> {
    match write_atomically(path, record.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) => match std::fs::read_to_string(path) {
            // A concurrent writer finished first.  Identical bytes:
            // converged, the record is in place, nothing to do.
            Ok(existing) if existing == record => Ok(()),
            // A *valid* record that disagrees is a determinism
            // violation — surface it, never shrug it off.
            Ok(existing) if is_valid(&existing) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "concurrent writer stored different bytes for cell {key} \
                     (determinism violation)"
                ),
            )),
            _ => Err(e),
        },
    }
}

/// Deletes every stale `*.tmp.*` scratch file directly under `dir`
/// (non-recursively) and returns how many were removed.  Scratch files are
/// only ever meaningful to the writer that created them; any still on disk
/// at open time belonged to a writer that died before its rename.
fn sweep_stale_tmp_files(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
        if is_file && name.contains(".tmp.") && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// Process-wide counter distinguishing concurrent writers *within* one
/// process (serve workers, test threads): the pid alone cannot.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the target directory,
/// flush, then rename over the final name.  The temp name embeds pid and a
/// process-wide sequence number so concurrent writers never share scratch
/// files (two threads interleaving writes into one temp file would tear
/// it).
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.flush()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The verified pieces shared by both record kinds: spec fingerprint, cell
/// key and checksummed payload.
struct VerifiedHeader<'a> {
    fingerprint: u64,
    cell_key: &'a str,
    payload: &'a str,
}

/// Runs the header-level validation layers over one raw record of the
/// given kind: banner version, optional `kind` line, spec fingerprint
/// line, cell-key line, payload length and FNV-1a checksum.  Payload
/// decoding and key cross-checks stay with the per-kind verifiers.
fn verify_header<'a>(
    raw: &'a str,
    expect_kind: Option<&str>,
    oldest_accepted: u32,
) -> Result<VerifiedHeader<'a>, RecordReject> {
    use RecordReject::Quarantine;
    let Some((header, payload)) = raw.split_once("\n---\n") else {
        return Err(Quarantine("truncated-header"));
    };
    let mut lines = header.lines();
    match lines.next().and_then(banner_version) {
        Some(version) if version > STORE_VERSION => return Err(RecordReject::Unsupported(version)),
        Some(version) if version >= oldest_accepted => {}
        _ => return Err(Quarantine("format")),
    }
    if let Some(kind) = expect_kind {
        let Some(kind_line) = lines.next().and_then(|l| l.strip_prefix("kind ")) else {
            return Err(Quarantine("format"));
        };
        if kind_line != kind {
            return Err(Quarantine("format"));
        }
    }
    let Some(spec_line) = lines.next().and_then(|l| l.strip_prefix("spec ")) else {
        return Err(Quarantine("format"));
    };
    let Ok(fingerprint) = u64::from_str_radix(spec_line, 16) else {
        return Err(Quarantine("format"));
    };
    let Some(cell_key) = lines.next().and_then(|l| l.strip_prefix("cell ")) else {
        return Err(Quarantine("format"));
    };
    let Some((len, digest)) = lines
        .next()
        .and_then(|l| l.strip_prefix("payload "))
        .and_then(|l| l.split_once(' '))
    else {
        return Err(Quarantine("format"));
    };
    if lines.next().is_some() {
        return Err(Quarantine("format"));
    }
    if len.parse() != Ok(payload.len()) {
        return Err(Quarantine("truncated-payload"));
    }
    if u64::from_str_radix(digest, 16) != Ok(stable_digest64(payload.as_bytes())) {
        return Err(Quarantine("checksum"));
    }
    Ok(VerifiedHeader {
        fingerprint,
        cell_key,
        payload,
    })
}

/// Runs every validation layer over one raw MC cell record.  Returns the
/// decoded result or the reason the record must be rejected.  v2 banners
/// are accepted — the cell layout is unchanged since v2.
fn verify_record(raw: &str, fingerprint: u64, cell_key: &str) -> Result<CellResult, RecordReject> {
    use RecordReject::Quarantine;
    let header = verify_header(raw, None, 2)?;
    if header.fingerprint != fingerprint {
        return Err(Quarantine("stale-spec"));
    }
    if header.cell_key != cell_key {
        return Err(Quarantine("cell-key"));
    }
    let result = decode_cell_payload(header.payload).map_err(|_| Quarantine("payload"))?;
    if result.cell != cell_key {
        return Err(Quarantine("cell-key"));
    }
    Ok(result)
}

/// Runs every validation layer over one raw certificate record.  v3 only —
/// certificate records did not exist before v3, so an older banner here is
/// a `format` rejection, not forward compatibility.
fn verify_cert_record(
    raw: &str,
    check_fingerprint: u64,
    cert_key: &str,
) -> Result<StoredCheck, RecordReject> {
    use RecordReject::Quarantine;
    let header = verify_header(raw, Some("certificate"), STORE_VERSION)?;
    if header.fingerprint != check_fingerprint {
        return Err(Quarantine("stale-spec"));
    }
    if header.cell_key != cert_key {
        return Err(Quarantine("cell-key"));
    }
    let stored = decode_check_payload(header.payload).map_err(|_| Quarantine("payload"))?;
    if stored.key != cert_key {
        return Err(Quarantine("cell-key"));
    }
    Ok(stored)
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

/// A deterministic 1-based partition of the expanded grid: shard `i/n` owns
/// every cell whose expansion position `p` satisfies `p % n == i - 1`.
/// Partitioning is by *position*, not by key hash, so the `n` shards are
/// balanced to within one cell and their union is exactly the grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index, `1 ..= count`.
    pub index: usize,
    /// Total number of shards (≥ 1).
    pub count: usize,
}

impl ShardSpec {
    /// The trivial partition that owns every cell.
    #[must_use]
    pub fn full() -> Self {
        ShardSpec { index: 1, count: 1 }
    }

    /// Whether this shard owns the cell at expansion position `position`
    /// (0-based).
    #[must_use]
    pub fn owns(&self, position: usize) -> bool {
        position % self.count == self.index - 1
    }

    /// The canonical `i/n` spec string.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }
}

/// Error parsing a `--shard i/n` spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseShardError(String);

impl fmt::Display for ParseShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}; usage: --shard <i>/<n> with 1 <= i <= n", self.0)
    }
}

impl std::error::Error for ParseShardError {}

impl std::str::FromStr for ShardSpec {
    type Err = ParseShardError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let Some((index, count)) = s.split_once('/') else {
            return Err(ParseShardError(format!(
                "shard spec {s:?} is not of the form i/n"
            )));
        };
        let index: usize = index
            .parse()
            .map_err(|_| ParseShardError(format!("shard index {index:?} is not a number")))?;
        let count: usize = count
            .parse()
            .map_err(|_| ParseShardError(format!("shard count {count:?} is not a number")))?;
        if count == 0 {
            return Err(ParseShardError("shard count must be >= 1".to_string()));
        }
        if index == 0 || index > count {
            return Err(ParseShardError(format!(
                "shard index {index} is outside 1..={count} (shards are 1-based)"
            )));
        }
        Ok(ShardSpec { index, count })
    }
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

/// Error produced by [`merge_stores`].
#[derive(Debug)]
pub enum MergeError {
    /// The spec expands to an empty grid.
    EmptyGrid,
    /// At least one cell of the grid has no valid record in any store.
    Missing {
        /// The missing cell keys, in expansion order.
        cells: Vec<String>,
    },
    /// Two stores hold *valid* records for the same cell that disagree on
    /// the payload bytes.  Cells are pure functions of their address, so
    /// this is a determinism-violation signal (diverging builds, tampered
    /// records that still checksum, or mismatched shard provenance) — never
    /// something a merge may paper over by picking one.
    Mismatch {
        /// The cell whose records disagree.
        cell: String,
        /// 0-based index (into the `stores` argument) of the first store
        /// consulted.
        first_store: usize,
        /// 0-based index of the store that disagreed with it.
        other_store: usize,
    },
    /// A record written by a newer store format than this build knows.
    /// Rejected loudly — never quarantined or silently skipped — because a
    /// merge that drops records it cannot read produces a silently
    /// incomplete report.
    Unsupported {
        /// The cell whose record is unreadable.
        cell: String,
        /// 0-based index of the store holding it.
        store: usize,
        /// The record's format version.
        version: u32,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::EmptyGrid => write!(f, "the scenario grid is empty"),
            MergeError::Missing { cells } => {
                let shown: Vec<&str> = cells.iter().take(8).map(String::as_str).collect();
                write!(
                    f,
                    "{} of the grid's cells have no valid store record: {}{}",
                    cells.len(),
                    shown.join(", "),
                    if cells.len() > shown.len() {
                        format!(" (+{} more)", cells.len() - shown.len())
                    } else {
                        String::new()
                    }
                )
            }
            MergeError::Mismatch {
                cell,
                first_store,
                other_store,
            } => write!(
                f,
                "stores #{} and #{} hold valid records for cell {cell} that disagree \
                 byte-for-byte — cells are pure functions of (spec, key), so this is a \
                 determinism violation, not a cache conflict",
                first_store + 1,
                other_store + 1,
            ),
            MergeError::Unsupported {
                cell,
                store,
                version,
            } => write!(
                f,
                "store #{} holds a record for cell {cell} with store format v{version}, \
                 newer than this build (v{STORE_VERSION}) — upgrade gdp or move the \
                 record aside",
                store + 1,
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Fuses one or more (shard) stores into the [`SweepReport`] the equivalent
/// unsharded run would have produced — byte for byte, without recomputing
/// anything.  Every cell of the spec's expansion is looked up in **every**
/// store; records are pure functions of the address, so all valid
/// candidates must be byte-identical — a disagreement aborts the merge with
/// [`MergeError::Mismatch`] (a determinism-violation signal, never resolved
/// by first-hit-wins).  Invalid records are quarantined as usual and do not
/// count as candidates.
///
/// # Errors
///
/// [`MergeError::Missing`] when any cell has no valid record anywhere;
/// [`MergeError::Mismatch`] when two stores' valid records for one cell
/// disagree; [`MergeError::EmptyGrid`] when the spec expands to nothing.
pub fn merge_stores(
    spec: &ScenarioSpec,
    stores: &[CellStore],
) -> Result<(SweepReport, StoreStats), MergeError> {
    let cells = spec.expand();
    if cells.is_empty() {
        return Err(MergeError::EmptyGrid);
    }
    let mut stats = StoreStats::default();
    let mut results = Vec::with_capacity(cells.len());
    let mut missing = Vec::new();
    for cell in &cells {
        let mut found: Option<(usize, CellResult, String)> = None;
        for (index, store) in stores.iter().enumerate() {
            match store.lookup(&cell.key) {
                StoreLookup::Hit(result) => {
                    let payload = encode_cell_payload(&result);
                    match &found {
                        None => found = Some((index, *result, payload)),
                        Some((first_store, _, first_payload)) => {
                            if payload != *first_payload {
                                return Err(MergeError::Mismatch {
                                    cell: cell.key.clone(),
                                    first_store: *first_store,
                                    other_store: index,
                                });
                            }
                        }
                    }
                }
                StoreLookup::Quarantined { .. } => stats.quarantined += 1,
                StoreLookup::Absent => {}
                StoreLookup::Unsupported { version } => {
                    return Err(MergeError::Unsupported {
                        cell: cell.key.clone(),
                        store: index,
                        version,
                    });
                }
            }
        }
        match found {
            Some((_, result, _)) => {
                stats.reused += 1;
                results.push(result);
            }
            None => missing.push(cell.key.clone()),
        }
    }
    if !missing.is_empty() {
        return Err(MergeError::Missing { cells: missing });
    }
    Ok((SweepReport::new(spec, results), stats))
}

// ---------------------------------------------------------------------------
// Lifecycle: gc and compaction
// ---------------------------------------------------------------------------

/// Counters reported by one [`gc_store`] pass (`gdp store gc`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Records whose spec context matched a manifest line.
    pub retained: u64,
    /// Records retired (deleted, or merely counted under `--dry-run`).
    pub retired: u64,
    /// Context notes retired alongside their last records.
    pub retired_notes: u64,
    /// Total bytes of retired records and notes.
    pub retired_bytes: u64,
    /// Whether this pass only reported and deleted nothing.
    pub dry_run: bool,
}

impl fmt::Display for GcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retained {} record(s), retired {} record(s) and {} context note(s), \
             {} bytes reclaimed{}",
            self.retained,
            self.retired,
            self.retired_notes,
            self.retired_bytes,
            if self.dry_run { " (dry run)" } else { "" }
        )
    }
}

/// The `spec <16-hex>` fingerprint in a record's header, if it parses.
fn record_spec_fingerprint(raw: &str) -> Option<u64> {
    raw.lines()
        .take(3)
        .find_map(|line| line.strip_prefix("spec "))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
}

/// The fingerprint embedded in a `<prefix>-<16-hex>.context` note name.
fn context_note_fingerprint(name: &str) -> Option<u64> {
    let hex = name.strip_suffix(".context")?.rsplit_once('-')?.1;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Garbage-collects the store at `dir` against a **manifest** of store
/// context lines (the strings recorded in `spec-*.context` and
/// `check-*.context` notes): every MC cell and certificate record whose
/// spec fingerprint matches the digest of some manifest line is retained,
/// everything else — including now-orphaned context notes — is retired.
/// With `dry_run` the pass only counts; nothing is deleted.
///
/// Files that do not parse as records at all (debris) are left for
/// [`compact_store`], whose job that is.
///
/// # Errors
///
/// Propagates deletion I/O errors; an absent store directory is
/// [`std::io::ErrorKind::NotFound`].
pub fn gc_store(dir: &Path, manifest: &[String], dry_run: bool) -> std::io::Result<GcReport> {
    if !dir.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("store directory {} does not exist", dir.display()),
        ));
    }
    let retained_fingerprints: std::collections::HashSet<u64> = manifest
        .iter()
        .map(|line| stable_digest64(line.trim().as_bytes()))
        .collect();
    let mut report = GcReport {
        dry_run,
        ..GcReport::default()
    };
    for sub in ["cells", "certs"] {
        let Ok(entries) = std::fs::read_dir(dir.join(sub)) else {
            continue;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
            if !is_file || name.contains(".tmp.") {
                continue;
            }
            let path = entry.path();
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Some(fingerprint) = record_spec_fingerprint(&raw) else {
                continue;
            };
            if retained_fingerprints.contains(&fingerprint) {
                report.retained += 1;
            } else {
                report.retired += 1;
                report.retired_bytes += raw.len() as u64;
                if !dry_run {
                    std::fs::remove_file(&path)?;
                }
            }
        }
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
            let Some(fingerprint) = context_note_fingerprint(&name) else {
                continue;
            };
            if is_file && !retained_fingerprints.contains(&fingerprint) {
                report.retired_notes += 1;
                report.retired_bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
                if !dry_run {
                    std::fs::remove_file(entry.path())?;
                }
            }
        }
    }
    Ok(report)
}

/// Counters reported by one [`compact_store`] pass (`gdp store compact`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Verified records rewritten into the fresh directory.
    pub live: u64,
    /// Invalid records dropped (they would have been quarantined on
    /// lookup; compaction drops them outright, loudly counted here).
    pub dropped_invalid: u64,
    /// Quarantine-directory debris left behind.
    pub dropped_quarantine: u64,
    /// Stale `*.tmp.*` scratch files left behind.
    pub dropped_tmp: u64,
    /// Context notes carried over.
    pub notes: u64,
}

impl fmt::Display for CompactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} live record(s) rewritten, {} invalid record(s) dropped, \
             {} quarantined file(s) dropped, {} stale tmp file(s) dropped, \
             {} context note(s) kept",
            self.live, self.dropped_invalid, self.dropped_quarantine, self.dropped_tmp, self.notes
        )
    }
}

/// `<dir>` with `suffix` appended to its final path component (the
/// compaction scratch/backup directories live next to the store).
fn sibling_dir(dir: &Path, suffix: &str) -> std::io::Result<PathBuf> {
    let name = dir.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("store path {} must name a directory", dir.display()),
        )
    })?;
    let mut name = name.to_os_string();
    name.push(suffix);
    Ok(dir.parent().unwrap_or(Path::new(".")).join(name))
}

/// Full record validation for compaction, where no expected fingerprint or
/// key is known a priori: the header layers run as usual, the payload must
/// decode and cross-check its embedded key, and the filename must be
/// exactly the address the record's own (fingerprint, key) pair derives —
/// so mis-addressed records never survive a compaction.
fn verify_compactable(
    raw: &str,
    file_name: &str,
    kind: Option<&str>,
    oldest_accepted: u32,
) -> Result<(), RecordReject> {
    use RecordReject::Quarantine;
    let header = verify_header(raw, kind, oldest_accepted)?;
    let (key, expected_name) = match kind {
        None => {
            let result = decode_cell_payload(header.payload).map_err(|_| Quarantine("payload"))?;
            let address = stable_digest64(
                format!("{:016x}|{}", header.fingerprint, header.cell_key).as_bytes(),
            );
            (
                result.cell,
                format!("{}-{address:016x}.cell", sanitize_key(header.cell_key)),
            )
        }
        Some(_) => {
            let stored = decode_check_payload(header.payload).map_err(|_| Quarantine("payload"))?;
            let address = stable_digest64(
                format!("{:016x}|cert|{}", header.fingerprint, header.cell_key).as_bytes(),
            );
            (
                stored.key,
                format!("{}-{address:016x}.cert", sanitize_key(header.cell_key)),
            )
        }
    };
    if key != header.cell_key || file_name != expected_name {
        return Err(Quarantine("cell-key"));
    }
    Ok(())
}

/// Compacts the store at `dir`: every live record is verified (all
/// integrity layers **plus** a filename/address cross-check and a byte
/// round-trip through the new directory) and rewritten into a fresh
/// directory, dropping quarantine debris, stale `*.tmp.*` scratch files
/// and invalid records; context notes and any other root files are carried
/// over verbatim.  The fresh directory then replaces the store through an
/// atomic two-rename swap:
///
/// ```text
/// build  <dir>.compact-tmp       (scratch; discarded wholesale on rerun)
/// rename <dir>        -> <dir>.pre-compact
/// rename <dir>.compact-tmp -> <dir>
/// delete <dir>.pre-compact
/// ```
///
/// A crash at **any** instant is recovered by simply rerunning: a stale
/// `.compact-tmp` is discarded, a `.pre-compact` left without a store is
/// renamed back, and a `.pre-compact` left *alongside* a store is the
/// superseded original of an already-completed swap.  Rewrites are
/// byte-identical, so the rerun converges on exactly the bytes an
/// uninterrupted compaction would have produced (fault-injection-tested in
/// `tests/store_gc_compact.rs`).
///
/// # Errors
///
/// I/O errors; `InvalidData` when a record's format version is newer than
/// this build (compacting what it cannot verify would risk losing live
/// data) or when a round-trip re-read disagrees.
pub fn compact_store(dir: &Path) -> std::io::Result<CompactReport> {
    let tmp = sibling_dir(dir, ".compact-tmp")?;
    let pre = sibling_dir(dir, ".pre-compact")?;
    // Crash recovery, in dependency order: discard a half-built scratch
    // directory, restore a store caught between the two renames, drop a
    // backup superseded by a completed swap.
    if tmp.exists() {
        std::fs::remove_dir_all(&tmp)?;
    }
    if !dir.exists() && pre.exists() {
        std::fs::rename(&pre, dir)?;
    }
    if pre.exists() {
        std::fs::remove_dir_all(&pre)?;
    }
    if !dir.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("store directory {} does not exist", dir.display()),
        ));
    }
    // An aborted rewrite (unsupported record, round-trip mismatch, I/O
    // error) must not leave a half-built scratch directory next to the
    // untouched store; recovery would clean it up on the next run, but a
    // clean failure is better than a deferred one.
    let result = compact_into(dir, &tmp);
    if result.is_err() {
        let _ = std::fs::remove_dir_all(&tmp);
        return result;
    }
    std::fs::rename(dir, &pre)?;
    std::fs::rename(&tmp, dir)?;
    std::fs::remove_dir_all(&pre)?;
    result
}

/// The rewrite half of [`compact_store`]: verifies and copies every live
/// record of `dir` into the scratch directory `tmp`, leaving `dir`
/// untouched.  The caller owns the atomic swap (and the cleanup of `tmp`
/// on failure).
fn compact_into(dir: &Path, tmp: &Path) -> std::io::Result<CompactReport> {
    let mut report = CompactReport::default();
    std::fs::create_dir_all(tmp.join("cells"))?;
    std::fs::create_dir_all(tmp.join("certs"))?;
    std::fs::create_dir_all(tmp.join("quarantine"))?;
    for (sub, kind, oldest) in [
        ("cells", None, 2),
        ("certs", Some("certificate"), STORE_VERSION),
    ] {
        let Ok(entries) = std::fs::read_dir(dir.join(sub)) else {
            continue;
        };
        let mut names: Vec<std::ffi::OsString> = entries
            .flatten()
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .map(|e| e.file_name())
            .collect();
        names.sort();
        for name in names {
            let lossy = name.to_string_lossy().into_owned();
            let path = dir.join(sub).join(&name);
            if lossy.contains(".tmp.") {
                report.dropped_tmp += 1;
                continue;
            }
            let Ok(raw) = std::fs::read_to_string(&path) else {
                report.dropped_invalid += 1;
                continue;
            };
            match verify_compactable(&raw, &lossy, kind, oldest) {
                Ok(()) => {}
                Err(RecordReject::Unsupported(version)) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "record {} has store format v{version}, newer than this build \
                             (v{STORE_VERSION}) — refusing to compact what it cannot verify",
                            path.display()
                        ),
                    ));
                }
                Err(RecordReject::Quarantine(_)) => {
                    report.dropped_invalid += 1;
                    continue;
                }
            }
            let out = tmp.join(sub).join(&name);
            std::fs::write(&out, raw.as_bytes())?;
            let reread = std::fs::read_to_string(&out)?;
            if reread != raw {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("round-trip mismatch rewriting {}", out.display()),
                ));
            }
            report.live += 1;
        }
    }
    if let Ok(entries) = std::fs::read_dir(dir.join("quarantine")) {
        report.dropped_quarantine = entries.flatten().count() as u64;
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let lossy = name.to_string_lossy().into_owned();
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            if lossy.contains(".tmp.") {
                report.dropped_tmp += 1;
                continue;
            }
            // Context notes — and any root file a future layout adds — are
            // carried over verbatim, round-trip-verified like records.
            let raw = std::fs::read(entry.path())?;
            let out = tmp.join(&name);
            std::fs::write(&out, &raw)?;
            if std::fs::read(&out)? != raw {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("round-trip mismatch rewriting {}", out.display()),
                ));
            }
            if lossy.ends_with(".context") {
                report.notes += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_sweep, run_sweep_durable, SweepOptions};
    use crate::spec::SeedPolicy;

    fn test_spec(tag: &str) -> ScenarioSpec {
        ScenarioSpec::new(tag)
            .with_families_str("ring,star")
            .unwrap()
            .with_sizes([4])
            .with_algorithms_str("gdp1,lr1")
            .unwrap()
            .with_trials(3)
            .with_max_steps(4_000)
            .with_seed_policy(SeedPolicy::PerCell(9))
    }

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gdp_store_test_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn completed_store(tag: &str) -> (ScenarioSpec, CellStore, PathBuf) {
        let spec = test_spec(tag);
        let dir = temp_store_dir(tag);
        let store = CellStore::open(&dir, &spec, None).unwrap();
        let (_, stats) = run_sweep_durable(
            &spec,
            &SweepOptions::quiet(),
            Some(&store),
            true,
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(stats.computed, 4);
        (spec, store, dir)
    }

    #[test]
    fn save_lookup_round_trip_is_exact_and_atomic() {
        let (spec, store, dir) = completed_store("roundtrip");
        let reference = run_sweep(&spec, &SweepOptions::quiet()).unwrap();
        for cell in &reference.cells {
            match store.lookup(&cell.cell) {
                StoreLookup::Hit(stored) => assert_eq!(*stored, *cell),
                other => panic!("expected hit for {}: {other:?}", cell.cell),
            }
        }
        // No temp files survive a clean save.
        let stray: Vec<_> = std::fs::read_dir(dir.join("cells"))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| !name.ends_with(".cell"))
            .collect();
        assert!(stray.is_empty(), "stray files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_is_absent_for_unknown_cells_and_other_fingerprints() {
        let (spec, store, dir) = completed_store("absent");
        assert!(matches!(store.lookup("ring/n99/GDP1"), StoreLookup::Absent));
        // A store handle opened for a *different* spec sees nothing: the
        // fingerprint participates in every address.
        let other = CellStore::open(&dir, &spec.clone().with_trials(99), None).unwrap();
        assert!(matches!(other.lookup("ring/n4/GDP1"), StoreLookup::Absent));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The corruption gauntlet: truncation, bit flips, fingerprint
    /// mismatches and stale-spec records are each detected, quarantined
    /// (never silently reused) and then transparently recomputed.
    #[test]
    fn corrupt_records_are_quarantined_and_recomputed_never_reused() {
        type Corruption<'a> = (&'a str, &'a dyn Fn(&Path));
        let cases: &[Corruption] = &[
            ("truncate", &|path| {
                let raw = std::fs::read(path).unwrap();
                std::fs::write(path, &raw[..raw.len() / 2]).unwrap();
            }),
            ("bitflip", &|path| {
                let mut raw = std::fs::read(path).unwrap();
                let target = raw.len() - 20; // somewhere inside the payload
                raw[target] ^= 0x04;
                std::fs::write(path, raw).unwrap();
            }),
            ("fingerprint", &|path| {
                let raw = std::fs::read_to_string(path).unwrap();
                let stale = raw
                    .lines()
                    .map(|l| {
                        if l.starts_with("spec ") {
                            "spec 00000000deadbeef".to_string()
                        } else {
                            l.to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
                    + "\n";
                std::fs::write(path, stale).unwrap();
            }),
        ];
        for (tag, corrupt) in cases {
            let (spec, store, dir) = completed_store(&format!("corrupt_{tag}"));
            let key = "ring/n4/GDP1";
            let path = store.record_path(key);
            corrupt(&path);
            // The resumed sweep itself detects the damage, quarantines the
            // record, recomputes exactly that cell, and ends up identical
            // to a clean run.
            let (report, stats) = run_sweep_durable(
                &spec,
                &SweepOptions::quiet(),
                Some(&store),
                true,
                None,
                |_| {},
            )
            .unwrap();
            assert!(
                std::fs::read_dir(store.quarantine_dir()).unwrap().count() >= 1,
                "{tag}: quarantine must hold the rejected record"
            );
            assert_eq!(stats.reused, 3, "{tag}");
            assert_eq!(stats.computed, 1, "{tag}");
            assert_eq!(stats.quarantined, 1, "{tag}");
            assert_eq!(
                report,
                run_sweep(&spec, &SweepOptions::quiet()).unwrap(),
                "{tag}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn records_renamed_onto_the_wrong_address_are_rejected() {
        let (_, store, dir) = completed_store("wrongkey");
        // Rename LR1's record onto GDP1's address: the embedded cell key no
        // longer matches the lookup.
        std::fs::rename(
            store.record_path("ring/n4/LR1"),
            store.record_path("ring/n4/GDP1"),
        )
        .unwrap();
        assert!(matches!(
            store.lookup("ring/n4/GDP1"),
            StoreLookup::Quarantined { reason: "cell-key" }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_specs_parse_partition_and_reject_malformed_input() {
        let shard: ShardSpec = "2/3".parse().unwrap();
        assert_eq!(shard, ShardSpec { index: 2, count: 3 });
        assert_eq!(shard.name(), "2/3");
        // Every position is owned by exactly one shard of the partition.
        for count in 1..=4usize {
            for position in 0..24 {
                let owners = (1..=count)
                    .filter(|&index| ShardSpec { index, count }.owns(position))
                    .count();
                assert_eq!(owners, 1, "position {position} of {count} shards");
            }
        }
        for bad in ["", "3", "0/4", "5/4", "a/b", "1/0", "-1/2", "1/2/3"] {
            let err = bad.parse::<ShardSpec>().unwrap_err();
            assert!(err.to_string().contains("usage: --shard"), "{bad}: {err}");
        }
    }

    #[test]
    fn merge_reconstructs_the_unsharded_report_and_names_missing_cells() {
        let spec = test_spec("merge");
        let reference = run_sweep(&spec, &SweepOptions::quiet()).unwrap();
        let dir_a = temp_store_dir("merge_a");
        let dir_b = temp_store_dir("merge_b");
        let store_a = CellStore::open(&dir_a, &spec, None).unwrap();
        let store_b = CellStore::open(&dir_b, &spec, None).unwrap();
        let shard = |i| Some(ShardSpec { index: i, count: 2 });
        run_sweep_durable(
            &spec,
            &SweepOptions::quiet(),
            Some(&store_a),
            false,
            shard(1),
            |_| {},
        )
        .unwrap();
        // Merging half the grid fails loudly, naming what is missing.
        let err =
            merge_stores(&spec, &[CellStore::open(&dir_a, &spec, None).unwrap()]).unwrap_err();
        assert!(err.to_string().contains("ring/n4/LR1"), "{err}");
        run_sweep_durable(
            &spec,
            &SweepOptions::quiet(),
            Some(&store_b),
            false,
            shard(2),
            |_| {},
        )
        .unwrap();
        let (merged, stats) = merge_stores(
            &spec,
            &[
                CellStore::open(&dir_a, &spec, None).unwrap(),
                CellStore::open(&dir_b, &spec, None).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(merged, reference);
        assert_eq!(merged.to_json(), reference.to_json());
        assert_eq!(merged.to_csv(), reference.to_csv());
        assert_eq!(stats.reused, 4);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open_without_touching_records() {
        let (spec, store, dir) = completed_store("tmpsweep");
        // Leftovers of SIGKILLed writers: scratch files in the cells dir
        // and next to the context note in the root.
        let stale_cell_tmp = dir.join("cells").join("ring_n4_GDP1-feed.tmp.12345.0");
        let stale_root_tmp = dir.join("spec-0000000000000000.tmp.12345.1");
        std::fs::write(&stale_cell_tmp, b"half a record").unwrap();
        std::fs::write(&stale_root_tmp, b"half a context").unwrap();
        drop(store);
        let reopened = CellStore::open(&dir, &spec, None).unwrap();
        assert_eq!(reopened.swept_tmp(), 2, "both stale scratch files swept");
        assert!(!stale_cell_tmp.exists());
        assert!(!stale_root_tmp.exists());
        // Real records are untouched and still verify.
        assert!(matches!(
            reopened.lookup("ring/n4/GDP1"),
            StoreLookup::Hit(_)
        ));
        // A second open has nothing left to sweep.
        assert_eq!(CellStore::open(&dir, &spec, None).unwrap().swept_tmp(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_on_the_same_cell_converge_without_error() {
        let (_spec, store, dir) = completed_store("concurrent");
        let result = match store.lookup("ring/n4/GDP1") {
            StoreLookup::Hit(result) => *result,
            other => panic!("expected hit: {other:?}"),
        };
        // Many threads hammering the same cell address: every save must
        // succeed (identical bytes converge) and the record stays valid.
        let store = std::sync::Arc::new(store);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let store = store.clone();
                let result = result.clone();
                scope.spawn(move || {
                    for _ in 0..16 {
                        store.save(&result).expect("concurrent save converges");
                    }
                });
            }
        });
        match store.lookup("ring/n4/GDP1") {
            StoreLookup::Hit(stored) => assert_eq!(*stored, result),
            other => panic!("record must survive the stampede: {other:?}"),
        }
        // A concurrent writer that would deposit *different* bytes for the
        // same address is a determinism violation, not a convergence case.
        let mut evil = result.clone();
        evil.mean_hunger += 1.0;
        let record_path = store.record_path("ring/n4/GDP1");
        let spec_fp = store.fingerprint();
        let evil_payload = crate::report::encode_cell_payload(&evil);
        let evil_record = format!(
            "{STORE_FORMAT}\nspec {spec_fp:016x}\ncell {}\npayload {} {:016x}\n---\n{evil_payload}",
            evil.cell,
            evil_payload.len(),
            stable_digest64(evil_payload.as_bytes()),
        );
        std::fs::write(&record_path, evil_record).unwrap();
        // Simulate "my rename lost" by making the scratch dir read-only?
        // Portable shortcut: call the convergence check directly through
        // save() after making the temp write fail is not portable, so
        // instead assert the weaker, still-load-bearing property: saving
        // over a valid-but-different record succeeds by *replacing* it
        // (rename wins), restoring the canonical bytes.
        store.save(&result).unwrap();
        match store.lookup("ring/n4/GDP1") {
            StoreLookup::Hit(stored) => assert_eq!(*stored, result),
            other => panic!("canonical record must win: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeat_quarantines_of_one_record_name_keep_all_evidence() {
        let (_, store, dir) = completed_store("requarantine");
        let path = store.record_path("ring/n4/GDP1");
        // First corruption: quarantined under <name>.<reason>.
        std::fs::write(&path, "garbage one").unwrap();
        assert!(matches!(
            store.lookup("ring/n4/GDP1"),
            StoreLookup::Quarantined { .. }
        ));
        // Second corruption of the same record name: a numeric suffix
        // disambiguates instead of overwriting the earlier evidence.
        std::fs::write(&path, "garbage two").unwrap();
        assert!(matches!(
            store.lookup("ring/n4/GDP1"),
            StoreLookup::Quarantined { .. }
        ));
        let evidence: Vec<String> = std::fs::read_dir(store.quarantine_dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(
            evidence.len(),
            2,
            "both corrupt snapshots must be preserved: {evidence:?}"
        );
        let contents: Vec<String> = evidence
            .iter()
            .map(|name| std::fs::read_to_string(store.quarantine_dir().join(name)).unwrap())
            .collect();
        assert!(
            contents.contains(&"garbage one".to_string()),
            "{contents:?}"
        );
        assert!(
            contents.contains(&"garbage two".to_string()),
            "{contents:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_detects_disagreeing_valid_records_as_determinism_violation() {
        let spec = test_spec("mismatch");
        let dir_a = temp_store_dir("mismatch_a");
        let dir_b = temp_store_dir("mismatch_b");
        for dir in [&dir_a, &dir_b] {
            let store = CellStore::open(dir, &spec, None).unwrap();
            run_sweep_durable(
                &spec,
                &SweepOptions::quiet(),
                Some(&store),
                false,
                None,
                |_| {},
            )
            .unwrap();
        }
        // Replace one of store B's records with a *valid* record whose
        // payload disagrees — the shape a diverged build or tampered shard
        // would produce.
        let store_b = CellStore::open(&dir_b, &spec, None).unwrap();
        let mut diverged = match store_b.lookup("ring/n4/GDP1") {
            StoreLookup::Hit(result) => *result,
            other => panic!("expected hit: {other:?}"),
        };
        diverged.mean_hunger += 1.0;
        store_b.save(&diverged).unwrap();
        let stores = [
            CellStore::open(&dir_a, &spec, None).unwrap(),
            CellStore::open(&dir_b, &spec, None).unwrap(),
        ];
        let err = merge_stores(&spec, &stores).unwrap_err();
        match &err {
            MergeError::Mismatch {
                cell,
                first_store,
                other_store,
            } => {
                assert_eq!(cell, "ring/n4/GDP1");
                assert_eq!((*first_store, *other_store), (0, 1));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("determinism violation"), "{err}");
        // Repairing store B restores the merge.
        let canonical = match stores[0].lookup("ring/n4/GDP1") {
            StoreLookup::Hit(result) => *result,
            other => panic!("expected hit: {other:?}"),
        };
        stores[1].save(&canonical).unwrap();
        let (merged, stats) = merge_stores(&spec, &stores).unwrap();
        assert_eq!(merged.cells.len(), 4);
        assert_eq!(stats.reused, 4);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn stable_digest_is_pinned_across_builds() {
        // FNV-1a test vectors: the digest addresses on-disk records, so it
        // must never drift between builds.
        assert_eq!(stable_digest64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_digest64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_digest64(b"foobar"), 0x85944171f73967e8);
    }

    /// A v2 store keeps answering MC cells under a v3 build: the version
    /// bump added certificate records, it did not change the cell record
    /// layout, so rejecting v2 cells would throw away valid work.
    #[test]
    fn v2_cell_records_still_answer_under_a_v3_build() {
        let (_, store, dir) = completed_store("v2_compat");
        let key = "ring/n4/GDP1";
        let path = store.record_path(key);
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.starts_with(STORE_FORMAT), "records are written as v3");
        // Rewrite the banner to v2 — everything after it is unchanged, which
        // is exactly what a store written by the previous release looks like.
        let downgraded = raw.replacen(STORE_FORMAT, STORE_FORMAT_V2, 1);
        assert_ne!(raw, downgraded);
        std::fs::write(&path, downgraded).unwrap();
        match store.lookup(key) {
            StoreLookup::Hit(result) => assert_eq!(result.cell, key),
            other => panic!("expected a hit on the v2 record: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A record from a *future* store format is rejected loudly —
    /// surfaced as `Unsupported`, never quarantined as if it were corrupt:
    /// the bytes are presumably fine, this build just cannot verify them.
    #[test]
    fn future_version_records_are_rejected_loudly_not_quarantined() {
        let (_, store, dir) = completed_store("future_version");
        let key = "ring/n4/GDP1";
        let path = store.record_path(key);
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, raw.replacen(STORE_FORMAT, "gdp-cell-store v9", 1)).unwrap();
        match store.lookup(key) {
            StoreLookup::Unsupported { version } => assert_eq!(version, 9),
            other => panic!("expected Unsupported: {other:?}"),
        }
        // The record is left in place for the newer build that wrote it...
        assert!(path.is_file(), "future-version record must not be deleted");
        // ...and the quarantine stays empty: nothing was condemned.
        let quarantined = std::fs::read_dir(dir.join("quarantine")).unwrap().count();
        assert_eq!(quarantined, 0);
        // A merge refuses the store outright rather than reporting the cell
        // as missing.
        let spec = test_spec("future_version");
        let stores = [CellStore::open(&dir, &spec, None).unwrap()];
        match merge_stores(&spec, &stores) {
            Err(MergeError::Unsupported { cell, version, .. }) => {
                assert_eq!(cell, key);
                assert_eq!(version, 9);
            }
            other => panic!("expected MergeError::Unsupported: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `gc_store` retires exactly the records whose spec context matches no
    /// manifest line — and `--dry-run` only counts, never deletes.
    #[test]
    fn gc_retires_unmatched_specs_and_dry_run_deletes_nothing() {
        let spec_a = test_spec("gc_keep");
        let spec_b = test_spec("gc_drop").with_trials(7);
        let dir = temp_store_dir("gc");
        for spec in [&spec_a, &spec_b] {
            let store = CellStore::open(&dir, spec, None).unwrap();
            run_sweep_durable(
                spec,
                &SweepOptions::quiet(),
                Some(&store),
                true,
                None,
                |_| {},
            )
            .unwrap();
        }
        let manifest = vec![spec_a.store_context(None)];

        let dry = gc_store(&dir, &manifest, true).unwrap();
        assert_eq!((dry.retained, dry.retired), (4, 4));
        assert!(dry.dry_run);
        assert!(dry.retired_bytes > 0);
        let store_b = CellStore::open(&dir, &spec_b, None).unwrap();
        assert!(
            matches!(store_b.lookup("ring/n4/GDP1"), StoreLookup::Hit(_)),
            "a dry run must not delete anything"
        );

        let report = gc_store(&dir, &manifest, false).unwrap();
        assert_eq!((report.retained, report.retired), (4, 4));
        assert_eq!(report.retired_notes, 1, "spec B's context note goes too");
        assert!(!report.dry_run);
        let store_a = CellStore::open(&dir, &spec_a, None).unwrap();
        assert!(matches!(
            store_a.lookup("ring/n4/GDP1"),
            StoreLookup::Hit(_)
        ));
        let store_b = CellStore::open(&dir, &spec_b, None).unwrap();
        assert!(matches!(
            store_b.lookup("ring/n4/GDP1"),
            StoreLookup::Absent
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compaction rewrites live records byte-for-byte, drops quarantine
    /// debris and stale tmp files, and leaves every answer intact.
    #[test]
    fn compaction_drops_debris_and_preserves_every_answer() {
        let (spec, store, dir) = completed_store("compact");
        // Manufacture debris: one quarantined record, one stale tmp file in
        // each scanned directory, and one unreadable (invalid) record.
        let key = "ring/n4/GDP1";
        let path = store.record_path(key);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert!(matches!(store.lookup(key), StoreLookup::Quarantined { .. }));
        std::fs::write(dir.join("cells").join("x.tmp.1.2"), b"torn write").unwrap();
        std::fs::write(dir.join("certs").join("y.tmp.3.4"), b"torn write").unwrap();
        std::fs::write(dir.join("cells").join("junk-0000.cell"), b"not a record").unwrap();

        let report = compact_store(&dir).unwrap();
        assert_eq!(report.live, 3, "4 cells minus the one quarantined");
        assert_eq!(report.dropped_invalid, 1);
        assert_eq!(report.dropped_quarantine, 1);
        assert_eq!(report.dropped_tmp, 2);
        assert_eq!(report.notes, 1);

        // The swap left no scaffolding behind…
        assert!(!sibling_dir(&dir, ".compact-tmp").unwrap().exists());
        assert!(!sibling_dir(&dir, ".pre-compact").unwrap().exists());
        // …and the surviving records still answer; the compacted-away cell
        // is Absent (recomputable), never a trusted wrong answer.
        let store = CellStore::open(&dir, &spec, None).unwrap();
        assert!(matches!(store.lookup(key), StoreLookup::Absent));
        assert!(matches!(store.lookup("star/n4/GDP1"), StoreLookup::Hit(_)));
        assert_eq!(
            std::fs::read_dir(dir.join("quarantine")).unwrap().count(),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compaction refuses a store holding records from a newer format:
    /// rewriting what it cannot verify could silently destroy valid work.
    #[test]
    fn compaction_refuses_future_version_records() {
        let (_, store, dir) = completed_store("compact_future");
        let path = store.record_path("ring/n4/GDP1");
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, raw.replacen(STORE_FORMAT, "gdp-cell-store v8", 1)).unwrap();
        let err = compact_store(&dir).unwrap_err();
        assert!(err.to_string().contains("newer than this build"), "{err}");
        // The original store is untouched by the refusal.
        assert!(path.is_file());
        assert!(!sibling_dir(&dir, ".compact-tmp").unwrap().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
