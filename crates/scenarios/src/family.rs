//! Parameterized topology families: one scale parameter `n` per family.

use gdp_topology::{builders, Result as TopologyResult, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::str::FromStr;

/// A topology family the sweep can enumerate: a map from one scale parameter
/// `n` (and, for the random families, a seed) to a concrete validated
/// [`Topology`].
///
/// Families deliberately reduce every shape to a *single* scale knob so that
/// one `--sizes` list applies across the whole grid; the per-family meaning
/// of `n` is documented on each variant (and listed by `gdp list`).
///
/// ```
/// use gdp_scenarios::TopologyFamily;
/// let family: TopologyFamily = "random-regular:3".parse()?;
/// let t = family.build(9, 7)?;
/// // n * d was odd, so the family rounded the fork count up to 10.
/// assert_eq!(t.num_forks(), 10);
/// assert_eq!(t.num_philosophers(), 15);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyFamily {
    /// The classic ring: `n` philosophers, `n` forks.  The only family on
    /// which LR1/LR2 are provably correct.
    Ring,
    /// A ring of `n` forks with `sharing` parallel philosophers per edge
    /// (the Figure 1 shape): `n * sharing` philosophers.
    SharedRing {
        /// Parallel philosophers per ring edge (Figure 1 uses 2).
        sharing: usize,
    },
    /// An open square grid on the smallest square of lattice forks with at
    /// least `n` of them.
    Grid,
    /// A torus (wraparound grid) on the smallest square of at least `n`
    /// forks, side at least 3; every fork shared by exactly 4 philosophers.
    Torus,
    /// The complete conflict graph on `n` forks: `n * (n-1) / 2`
    /// philosophers.
    Complete,
    /// A star with `n` spoke philosophers around one hub fork.
    Star,
    /// Two complete graphs on `max(3, n/2)` forks each, joined by a path of
    /// `bridge` philosophers.
    Barbell {
        /// Philosophers on the path joining the two cliques.
        bridge: usize,
    },
    /// A generalized theta graph: `n` philosophers split as evenly as
    /// possible over `paths` internally disjoint hub-to-hub paths.
    Theta {
        /// Number of internally disjoint paths between the two hubs.
        paths: usize,
    },
    /// A seeded random `degree`-regular conflict graph on `n` forks
    /// (rounded up by one when `n * degree` is odd).
    RandomRegular {
        /// Number of philosophers sharing every fork.
        degree: usize,
    },
}

/// One row of the family catalog printed by `gdp list`.
pub struct FamilyCatalogEntry {
    /// The spec string (optionally with a `:param` suffix).
    pub spec: &'static str,
    /// What the scale parameter `n` means for this family.
    pub size_meaning: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// The catalog of selectable families, in presentation order.
pub const FAMILY_CATALOG: &[FamilyCatalogEntry] = &[
    FamilyCatalogEntry {
        spec: "ring",
        size_meaning: "n philosophers = n forks",
        description: "classic Dijkstra ring (the LR1/LR2 safe zone)",
    },
    FamilyCatalogEntry {
        spec: "shared-ring[:sharing]",
        size_meaning: "n forks, n*sharing philosophers",
        description: "ring with parallel philosophers per edge (Figure 1)",
    },
    FamilyCatalogEntry {
        spec: "grid",
        size_meaning: "smallest square >= n forks",
        description: "open lattice, philosophers on the edges",
    },
    FamilyCatalogEntry {
        spec: "torus",
        size_meaning: "smallest square >= n forks, side >= 3",
        description: "wraparound lattice, every fork shared by 4",
    },
    FamilyCatalogEntry {
        spec: "complete",
        size_meaning: "n forks, n(n-1)/2 philosophers",
        description: "complete conflict graph (Theorem 3 worst case)",
    },
    FamilyCatalogEntry {
        spec: "star",
        size_meaning: "n spoke philosophers",
        description: "one hub fork shared by all spokes (acyclic)",
    },
    FamilyCatalogEntry {
        spec: "barbell[:bridge]",
        size_meaning: "two K_(n/2) cliques + bridge",
        description: "dense communities coupled by a sparse path",
    },
    FamilyCatalogEntry {
        spec: "theta[:paths]",
        size_meaning: "n philosophers over `paths` hub-to-hub paths",
        description: "generalized theta graph (Theorem 2 witness)",
    },
    FamilyCatalogEntry {
        spec: "random-regular[:degree]",
        size_meaning: "n forks, n*degree/2 philosophers",
        description: "seeded random degree-regular conflict graph",
    },
];

/// The smallest side `s` with `s * s >= n` (integer ceil-sqrt), computed
/// without floating point so the mapping is platform-exact.  Ceiling rather
/// than rounding keeps the mapping *injective enough* for sweep size lists:
/// consecutive sweep sizes like 6 and 12 land on different squares (3x3 vs
/// 4x4), which round-to-nearest would collapse.
fn isqrt_ceil(n: usize) -> usize {
    let mut s = 0usize;
    while s * s < n {
        s += 1;
    }
    s
}

impl TopologyFamily {
    /// The smallest scale parameter at which [`build`](Self::build) is
    /// *guaranteed* to succeed.  Families that clamp or round their
    /// parameters (torus, grid, barbell, random-regular) may also accept
    /// smaller values; sizes at or above `min_size` always work.
    #[must_use]
    pub fn min_size(self) -> usize {
        match self {
            TopologyFamily::Ring | TopologyFamily::SharedRing { .. } => 2,
            TopologyFamily::Grid => 2,
            TopologyFamily::Torus => 1, // rounds up to the 3x3 torus
            TopologyFamily::Complete => 2,
            TopologyFamily::Star => 1,
            TopologyFamily::Barbell { .. } => 1, // clique size clamps to 3
            TopologyFamily::Theta { paths } => paths + 1,
            TopologyFamily::RandomRegular { degree } => degree + 1,
        }
    }

    /// Builds the family member at scale `n`.  `seed` feeds the random
    /// families (and is ignored by the deterministic ones), so a cell's
    /// topology is a pure function of `(family, n, seed)`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying builder's validation error when `n` is
    /// below [`min_size`](Self::min_size) or otherwise out of range.
    pub fn build(self, n: usize, seed: u64) -> TopologyResult<Topology> {
        match self {
            TopologyFamily::Ring => builders::classic_ring(n),
            TopologyFamily::SharedRing { sharing } => builders::shared_ring(n, sharing),
            TopologyFamily::Grid => {
                let side = isqrt_ceil(n).max(2);
                builders::grid(side, side)
            }
            TopologyFamily::Torus => {
                let side = isqrt_ceil(n).max(3);
                builders::torus(side, side)
            }
            TopologyFamily::Complete => builders::complete_conflict(n),
            TopologyFamily::Star => builders::star(n),
            TopologyFamily::Barbell { bridge } => builders::barbell((n / 2).max(3), bridge),
            TopologyFamily::Theta { paths } => {
                let base = n / paths;
                let extra = n % paths;
                let lengths: Vec<usize> =
                    (0..paths).map(|i| base + usize::from(i < extra)).collect();
                builders::generalized_theta(&lengths)
            }
            TopologyFamily::RandomRegular { degree } => {
                let forks = n + (n * degree) % 2;
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                builders::random_regular(forks, degree, &mut rng)
            }
        }
    }

    /// The family's canonical name, including non-default parameters
    /// (`"random-regular:4"`), suitable for re-parsing with [`FromStr`].
    #[must_use]
    pub fn name(self) -> String {
        match self {
            TopologyFamily::Ring => "ring".to_string(),
            TopologyFamily::SharedRing { sharing } => format!("shared-ring:{sharing}"),
            TopologyFamily::Grid => "grid".to_string(),
            TopologyFamily::Torus => "torus".to_string(),
            TopologyFamily::Complete => "complete".to_string(),
            TopologyFamily::Star => "star".to_string(),
            TopologyFamily::Barbell { bridge } => format!("barbell:{bridge}"),
            TopologyFamily::Theta { paths } => format!("theta:{paths}"),
            TopologyFamily::RandomRegular { degree } => format!("random-regular:{degree}"),
        }
    }

    /// Whether the family's topology depends on the cell seed.
    #[must_use]
    pub fn is_random(self) -> bool {
        matches!(self, TopologyFamily::RandomRegular { .. })
    }
}

impl fmt::Display for TopologyFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error returned when parsing an unknown or malformed family spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyParseError {
    input: String,
    reason: String,
}

impl fmt::Display for FamilyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid topology family {:?}: {}",
            self.input, self.reason
        )
    }
}

impl std::error::Error for FamilyParseError {}

impl FromStr for TopologyFamily {
    type Err = FamilyParseError;

    /// Parses `"name"` or `"name:param"` (see [`FAMILY_CATALOG`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &str| FamilyParseError {
            input: s.to_string(),
            reason: reason.to_string(),
        };
        let (name, param) = match s.split_once(':') {
            Some((name, param)) => {
                let value: usize = param
                    .parse()
                    .map_err(|_| err("parameter must be a positive integer"))?;
                if value == 0 {
                    return Err(err("parameter must be positive"));
                }
                (name, Some(value))
            }
            None => (s, None),
        };
        let family = match name.to_ascii_lowercase().as_str() {
            "ring" | "classic-ring" => TopologyFamily::Ring,
            "shared-ring" => TopologyFamily::SharedRing {
                sharing: param.unwrap_or(2),
            },
            "grid" => TopologyFamily::Grid,
            "torus" => TopologyFamily::Torus,
            "complete" | "clique" => TopologyFamily::Complete,
            "star" => TopologyFamily::Star,
            "barbell" => TopologyFamily::Barbell {
                bridge: param.unwrap_or(2),
            },
            "theta" => {
                let paths = param.unwrap_or(3);
                if paths < 2 {
                    return Err(err("a theta graph needs at least 2 paths"));
                }
                TopologyFamily::Theta { paths }
            }
            "random-regular" | "regular" => TopologyFamily::RandomRegular {
                degree: param.unwrap_or(3),
            },
            _ => return Err(err("unknown family name; see `gdp list`")),
        };
        match family {
            TopologyFamily::Ring
            | TopologyFamily::Grid
            | TopologyFamily::Torus
            | TopologyFamily::Complete
            | TopologyFamily::Star
                if param.is_some() =>
            {
                Err(err("this family takes no parameter"))
            }
            _ => Ok(family),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_topology::analysis;

    #[test]
    fn isqrt_ceil_picks_the_smallest_covering_square() {
        assert_eq!(isqrt_ceil(0), 0);
        assert_eq!(isqrt_ceil(1), 1);
        assert_eq!(isqrt_ceil(9), 3);
        assert_eq!(isqrt_ceil(10), 4);
        assert_eq!(isqrt_ceil(16), 4);
        assert_eq!(isqrt_ceil(17), 5);
        // The default sweep sizes 6 and 12 map to distinct tori (3x3 vs 4x4).
        assert_eq!(isqrt_ceil(6), 3);
        assert_eq!(isqrt_ceil(12), 4);
    }

    #[test]
    fn every_catalog_family_parses_and_builds_at_min_size_and_above() {
        let families = [
            "ring",
            "shared-ring:2",
            "grid",
            "torus",
            "complete",
            "star",
            "barbell:2",
            "theta:3",
            "random-regular:3",
        ];
        for spec in families {
            let family: TopologyFamily = spec.parse().unwrap();
            for n in family.min_size()..family.min_size() + 8 {
                let t = family
                    .build(n, 1)
                    .unwrap_or_else(|e| panic!("{spec} at n={n}: {e}"));
                assert!(t.num_philosophers() >= 1, "{spec} n={n}");
                assert!(analysis::is_connected(&t), "{spec} n={n} must be connected");
            }
        }
    }

    #[test]
    fn family_names_round_trip_through_parsing() {
        for spec in [
            TopologyFamily::Ring,
            TopologyFamily::SharedRing { sharing: 3 },
            TopologyFamily::Grid,
            TopologyFamily::Torus,
            TopologyFamily::Complete,
            TopologyFamily::Star,
            TopologyFamily::Barbell { bridge: 4 },
            TopologyFamily::Theta { paths: 5 },
            TopologyFamily::RandomRegular { degree: 4 },
        ] {
            let reparsed: TopologyFamily = spec.name().parse().unwrap();
            assert_eq!(reparsed, spec, "{} should round-trip", spec.name());
        }
    }

    #[test]
    fn random_families_are_seed_deterministic() {
        let family = TopologyFamily::RandomRegular { degree: 3 };
        let a = family.build(10, 7).unwrap();
        let b = family.build(10, 7).unwrap();
        let c = family.build(10, 8).unwrap();
        assert_eq!(a.arcs(), b.arcs());
        assert_ne!(a.arcs(), c.arcs());
        assert!(family.is_random());
        assert!(!TopologyFamily::Ring.is_random());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!("nope".parse::<TopologyFamily>().is_err());
        assert!("ring:5".parse::<TopologyFamily>().is_err());
        assert!("complete:7".parse::<TopologyFamily>().is_err());
        assert!("star:9".parse::<TopologyFamily>().is_err());
        assert!("barbell:0".parse::<TopologyFamily>().is_err());
        assert!("theta:1".parse::<TopologyFamily>().is_err());
        assert!("theta:x".parse::<TopologyFamily>().is_err());
    }

    #[test]
    fn catalog_specs_parse() {
        for entry in FAMILY_CATALOG {
            let bare = entry.spec.split('[').next().unwrap();
            assert!(
                bare.parse::<TopologyFamily>().is_ok(),
                "catalog entry {bare} must parse"
            );
        }
    }
}
