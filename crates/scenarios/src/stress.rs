//! Real-thread **stress workloads**: one contending OS thread per
//! philosopher, driven by the algorithm-generic `gdp-runtime`, reported as
//! hand-written JSON/CSV artifacts.
//!
//! Where a sweep ([`crate::run_sweep`]) measures the *probabilistic automata*
//! semantics under a simulated adversary, a stress run measures the same
//! algorithm under the only adversary production code ever faces: the OS
//! scheduler with real cache lines and real contention.  A [`StressSpec`]
//! names one *family × size × algorithm* cell plus a thread count and a
//! load; [`run_stress`] executes it and returns a [`StressReport`].
//!
//! ## Determinism contract
//!
//! Real-thread interleavings are OS-chosen, so — unlike sweeps — a stress
//! report is not bitwise a function of its spec in general.  The committed
//! artifact contract is preserved anyway, the same way the sweep reports do
//! it: **timing fields are opt-in**.  With timing off (the default), a
//! meal-budget run that fed everyone serializes only deterministic facts
//! (every active philosopher ate exactly its budget), so the JSON/CSV bytes
//! are reproducible across runs and machines.  Duration-mode meal counts
//! are inherently wall-clock-dependent; treat those artifacts as
//! measurements, not fixtures.  The full schema is documented in
//! `docs/RUNTIME.md`.

use crate::family::TopologyFamily;
use gdp_algorithms::AlgorithmKind;
use gdp_runtime::{run_for_duration, run_with, RunOptions, RunReport, WAIT_HISTOGRAM_BUCKETS};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// What a stress run drives the table to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StressLoad {
    /// Every active seat completes exactly this many meals (or the watchdog
    /// trips).  Deterministic meal counts — the byte-reproducible mode.
    MealsPerSeat(u64),
    /// Every active seat dines as often as it can for this many
    /// milliseconds.  Meal counts measure fairness/throughput under real
    /// contention and are wall-clock-dependent.
    DurationMs(u64),
}

impl StressLoad {
    /// The canonical spec string (`"meals:50"` / `"duration_ms:200"`).
    #[must_use]
    pub fn name(self) -> String {
        match self {
            StressLoad::MealsPerSeat(m) => format!("meals:{m}"),
            StressLoad::DurationMs(ms) => format!("duration_ms:{ms}"),
        }
    }
}

/// One stress-workload cell: topology family × size × algorithm × threads ×
/// load.
#[derive(Clone, Debug)]
pub struct StressSpec {
    /// The topology family.
    pub family: TopologyFamily,
    /// The family's scale parameter `n`.
    pub size: usize,
    /// The algorithm every seat interprets.
    pub algorithm: AlgorithmKind,
    /// Number of philosophers that get a driving thread (`0` = all).
    /// Driving fewer threads than philosophers models partial
    /// participation: the remaining philosophers stay thinking and their
    /// forks stay free.
    pub threads: usize,
    /// The load to drive.
    pub load: StressLoad,
    /// Whole-run watchdog in milliseconds; bounds even the naive baseline's
    /// real deadlock.  `0` disables the watchdog (never do that for
    /// [`AlgorithmKind::Naive`]).  In duration mode a watchdog shorter
    /// than the duration cuts the run and reports as tripped (the `gdp
    /// stress` CLI therefore defaults it to `0` when `--duration-ms` is
    /// given).
    pub watchdog_ms: u64,
    /// Seed for the topology (random families) and the seats' private
    /// randomness.
    pub seed: u64,
    /// Spin iterations executed inside each critical section, modelling
    /// real work while both resources are held.
    pub spin: u32,
    /// Crash-stop faults (the runtime face of the adversary catalog's
    /// `crash:<f>` family): this many seeded driven seats stop
    /// mid-protocol before finishing their budget, recovering their forks
    /// through `Seat::reset_trying`.  Victims and crash points derive from
    /// [`seed`](Self::seed), so crash runs replay; crashed seats are
    /// exempt from the `everyone_ate` success criterion.
    pub crash_seats: usize,
}

impl StressSpec {
    /// A spec with the default load (50 meals per seat), a 30-second
    /// watchdog, all philosophers driven, seed 0 and a small spin.
    #[must_use]
    pub fn new(family: TopologyFamily, size: usize, algorithm: AlgorithmKind) -> Self {
        StressSpec {
            family,
            size,
            algorithm,
            threads: 0,
            load: StressLoad::MealsPerSeat(50),
            watchdog_ms: 30_000,
            seed: 0,
            spin: 64,
            crash_seats: 0,
        }
    }

    /// The cell key, e.g. `"ring/n5/GDP2"` (matching sweep cell keys).
    #[must_use]
    pub fn cell(&self) -> String {
        format!("{}/n{}/{}", self.family.name(), self.size, self.algorithm)
    }
}

/// Wall-clock figures of a stress run, serialized only on request.
#[derive(Clone, Debug, PartialEq)]
pub struct StressTiming {
    /// Wall-clock seconds of the whole run.
    pub elapsed_secs: f64,
    /// Total meals per second across the table.
    pub meals_per_sec: f64,
    /// Mean hungry-to-eating latency in microseconds (over all meals).
    pub mean_wait_micros: f64,
    /// Median time-to-first-meal in nanoseconds, estimated from the log2
    /// bucket histogram of per-seat first waits (`gdp-observe`'s
    /// nearest-rank bucket-floor estimator, so for a true value `t` the
    /// reported `e` satisfies `e <= t < max(2e, 2)`).
    pub first_meal_p50: f64,
    /// 90th-percentile time-to-first-meal in nanoseconds (same estimator).
    pub first_meal_p90: f64,
    /// 99th-percentile time-to-first-meal in nanoseconds (same estimator).
    pub first_meal_p99: f64,
    /// Table-wide log2 histogram of per-meal wait times: bucket `i` counts
    /// meals whose wait fell in `[2^i, 2^(i+1))` nanoseconds.
    pub wait_histogram: [u64; WAIT_HISTOGRAM_BUCKETS],
}

/// The result of one stress run (see `docs/RUNTIME.md` for the serialized
/// schema).
#[derive(Clone, Debug, PartialEq)]
pub struct StressReport {
    /// Cell key (`family/nSIZE/ALGORITHM`).
    pub cell: String,
    /// Family name.
    pub family: String,
    /// Scale parameter.
    pub size: usize,
    /// Philosophers in the built topology.
    pub philosophers: usize,
    /// Forks in the built topology.
    pub forks: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Seats that had a driving thread.
    pub threads: usize,
    /// The load descriptor (`meals:50` / `duration_ms:200`).
    pub load: String,
    /// The watchdog bound in milliseconds (0 = unbounded).
    pub watchdog_ms: u64,
    /// The seed.
    pub seed: u64,
    /// Critical-section spin iterations.
    pub spin: u32,
    /// Crash-stop faults requested.
    pub crash_seats: usize,
    /// The seats the fault model actually crashed (seeded, ascending).
    pub crashed_seats: Vec<u64>,
    /// Meals per philosopher (inactive seats report 0).
    pub meals: Vec<u64>,
    /// Total meals.
    pub total_meals: u64,
    /// Minimum meals over the *active* seats.
    pub min_meals: u64,
    /// Maximum meals over the *active* seats.
    pub max_meals: u64,
    /// Whether every active seat ate at least once.
    pub everyone_ate: bool,
    /// Whether the watchdog fired before some seat finished its budget.
    pub watchdog_tripped: bool,
    /// Jain's fairness index over the active seats' meal counts.
    pub jain_fairness: f64,
    /// Wall-clock figures; `None` unless timing was requested.
    pub timing: Option<StressTiming>,
}

impl StressReport {
    /// Whether the run met its qualitative goal: no tripped watchdog and
    /// every active philosopher fed.  `gdp stress` exits nonzero otherwise.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        !self.watchdog_tripped && self.everyone_ate
    }
}

fn from_run_report(spec: &StressSpec, report: &RunReport, record_timing: bool) -> StressReport {
    let active = &report.meals[..report.active_seats];
    let timing = record_timing
        .then_some(report.timing.as_ref())
        .flatten()
        .map(|t| {
            let total = report.total_meals();
            let wait_nanos: u128 = t.wait.iter().map(|w| w.as_nanos()).sum();
            // Time-to-first-meal percentiles over the seats that ate,
            // through the shared log2-bucket estimator (the runtime face of
            // the simulator's step-denominated first-meal histogram).
            let mut first_waits = gdp_observe::Log2Histogram::new();
            for nanos in t.first_wait_nanos.iter().flatten() {
                first_waits.record(*nanos);
            }
            StressTiming {
                elapsed_secs: t.elapsed.as_secs_f64(),
                meals_per_sec: t.throughput_meals_per_sec,
                mean_wait_micros: if total > 0 {
                    wait_nanos as f64 / 1_000.0 / total as f64
                } else {
                    0.0
                },
                first_meal_p50: first_waits.quantile(50.0),
                first_meal_p90: first_waits.quantile(90.0),
                first_meal_p99: first_waits.quantile(99.0),
                wait_histogram: t.wait_histogram,
            }
        });
    StressReport {
        cell: spec.cell(),
        family: spec.family.name(),
        size: spec.size,
        philosophers: report.philosophers,
        forks: 0, // filled by run_stress, which still holds the topology
        algorithm: report.algorithm.name().to_string(),
        threads: report.active_seats,
        load: spec.load.name(),
        watchdog_ms: spec.watchdog_ms,
        seed: spec.seed,
        spin: spec.spin,
        crash_seats: spec.crash_seats,
        crashed_seats: report
            .crashed
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(p, _)| p as u64)
            .collect(),
        total_meals: report.total_meals(),
        min_meals: active.iter().copied().min().unwrap_or(0),
        max_meals: active.iter().copied().max().unwrap_or(0),
        everyone_ate: report.everyone_ate(),
        watchdog_tripped: report.watchdog_tripped,
        jain_fairness: report.jain_fairness(),
        meals: report.meals.clone(),
        timing,
    }
}

/// Executes one stress cell: builds the topology, spawns one thread per
/// active seat, drives the load on real contending OS threads, and collects
/// the report.  `record_timing` controls whether wall-clock fields are
/// attached (and later serialized) — leave it off for byte-reproducible
/// artifacts.
///
/// # Errors
///
/// Returns a message when the topology cannot be built at this size.
pub fn run_stress(spec: &StressSpec, record_timing: bool) -> Result<StressReport, String> {
    run_stress_observed(spec, record_timing, None)
}

/// [`run_stress`] with a structured-event sink attached to every driven
/// seat: each seat emits `schedule`/`acquire`/`release`/`meal_start`/
/// `meal_finish` (plus `crash`/`watchdog`) events stamped with its private
/// sequence number.  Real threads interleave OS-dependently, so the merged
/// stream is a *measurement*; exporters sort it by `(actor, clock)` before
/// writing (see `gdp stress --trace`).
///
/// # Errors
///
/// As [`run_stress`].
pub fn run_stress_observed(
    spec: &StressSpec,
    record_timing: bool,
    sink: Option<gdp_observe::SharedSink>,
) -> Result<StressReport, String> {
    let topology = spec.family.build(spec.size, spec.seed).map_err(|e| {
        format!(
            "cannot build {} at n={}: {e}",
            spec.family.name(),
            spec.size
        )
    })?;
    let forks = topology.num_forks();
    let options = RunOptions {
        algorithm: spec.algorithm,
        meals_per_seat: match spec.load {
            StressLoad::MealsPerSeat(m) => m,
            StressLoad::DurationMs(_) => 0,
        },
        active_seats: (spec.threads > 0).then_some(spec.threads),
        watchdog: (spec.watchdog_ms > 0).then(|| Duration::from_millis(spec.watchdog_ms)),
        seed: spec.seed,
        nr_range: None,
        crash_seats: spec.crash_seats,
        sink,
    };
    let spin = spec.spin;
    let critical = move || {
        for _ in 0..spin {
            std::hint::spin_loop();
        }
    };
    let run = match spec.load {
        StressLoad::MealsPerSeat(_) => run_with(topology, &options, critical),
        StressLoad::DurationMs(ms) => {
            run_for_duration(topology, &options, Duration::from_millis(ms), critical)
        }
    };
    let mut report = from_run_report(spec, &run, record_timing);
    report.forks = forks;
    Ok(report)
}

/// The CSV header row written by [`StressReport::to_csv`].
#[must_use]
pub fn stress_csv_header() -> &'static str {
    "cell,family,size,philosophers,forks,algorithm,threads,load,watchdog_ms,seed,spin,\
     crash_seats,crashed_seats,\
     total_meals,min_meals,max_meals,everyone_ate,watchdog_tripped,jain_fairness,\
     elapsed_secs,meals_per_sec,mean_wait_micros,\
     first_meal_p50,first_meal_p90,first_meal_p99"
}

fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

impl StressReport {
    /// Renders the report as a JSON document (`"schema": 1`, `"kind":
    /// "runtime_stress"`).  With timing off, a meal-budget run that fed
    /// everyone produces identical bytes on every run; see the module docs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"kind\": \"runtime_stress\",");
        let _ = writeln!(out, "  \"cell\": \"{}\",", self.cell);
        let _ = writeln!(out, "  \"family\": \"{}\",", self.family);
        let _ = writeln!(out, "  \"size\": {},", self.size);
        let _ = writeln!(out, "  \"philosophers\": {},", self.philosophers);
        let _ = writeln!(out, "  \"forks\": {},", self.forks);
        let _ = writeln!(out, "  \"algorithm\": \"{}\",", self.algorithm);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"load\": \"{}\",", self.load);
        let _ = writeln!(out, "  \"watchdog_ms\": {},", self.watchdog_ms);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"spin\": {},", self.spin);
        let _ = writeln!(out, "  \"crash_seats\": {},", self.crash_seats);
        let crashed: Vec<String> = self.crashed_seats.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "  \"crashed_seats\": [{}],", crashed.join(", "));
        let _ = writeln!(out, "  \"total_meals\": {},", self.total_meals);
        let _ = writeln!(out, "  \"min_meals\": {},", self.min_meals);
        let _ = writeln!(out, "  \"max_meals\": {},", self.max_meals);
        let _ = writeln!(out, "  \"everyone_ate\": {},", self.everyone_ate);
        let _ = writeln!(out, "  \"watchdog_tripped\": {},", self.watchdog_tripped);
        let _ = writeln!(out, "  \"jain_fairness\": {},", num(self.jain_fairness));
        let meals: Vec<String> = self.meals.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "  \"meals\": [{}],", meals.join(", "));
        match &self.timing {
            None => {
                let _ = writeln!(out, "  \"elapsed_secs\": null,");
                let _ = writeln!(out, "  \"meals_per_sec\": null,");
                let _ = writeln!(out, "  \"mean_wait_micros\": null,");
                let _ = writeln!(out, "  \"first_meal_p50\": null,");
                let _ = writeln!(out, "  \"first_meal_p90\": null,");
                let _ = writeln!(out, "  \"first_meal_p99\": null,");
                let _ = writeln!(out, "  \"wait_histogram_ns\": null");
            }
            Some(t) => {
                let _ = writeln!(out, "  \"elapsed_secs\": {},", num(t.elapsed_secs));
                let _ = writeln!(out, "  \"meals_per_sec\": {},", num(t.meals_per_sec));
                let _ = writeln!(out, "  \"mean_wait_micros\": {},", num(t.mean_wait_micros));
                let _ = writeln!(out, "  \"first_meal_p50\": {},", num(t.first_meal_p50));
                let _ = writeln!(out, "  \"first_meal_p90\": {},", num(t.first_meal_p90));
                let _ = writeln!(out, "  \"first_meal_p99\": {},", num(t.first_meal_p99));
                // Sparse form: only non-empty buckets, as [lo_ns, hi_ns, count].
                // Bucket 0 also absorbs 0-ns waits and the top bucket absorbs
                // everything longer, so the serialized bounds reflect that.
                let last = t.wait_histogram.len() - 1;
                let buckets: Vec<String> = t
                    .wait_histogram
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        let lo = if i == 0 { 0u64 } else { 1u64 << i };
                        let hi = if i == last {
                            u64::MAX as u128
                        } else {
                            (1u128 << (i + 1)) - 1
                        };
                        format!("[{lo}, {hi}, {c}]")
                    })
                    .collect();
                let _ = writeln!(out, "  \"wait_histogram_ns\": [{}]", buckets.join(", "));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the report as CSV: the [`stress_csv_header`] row plus one data
    /// row.  Timing columns are empty when timing was not recorded.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let (elapsed, mps, wait, p50, p90, p99) = match &self.timing {
            Some(t) => (
                num(t.elapsed_secs),
                num(t.meals_per_sec),
                num(t.mean_wait_micros),
                num(t.first_meal_p50),
                num(t.first_meal_p90),
                num(t.first_meal_p99),
            ),
            None => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
        };
        let crashed: Vec<String> = self.crashed_seats.iter().map(u64::to_string).collect();
        let mut out = String::from(stress_csv_header());
        out.push('\n');
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.cell,
            self.family,
            self.size,
            self.philosophers,
            self.forks,
            self.algorithm,
            self.threads,
            self.load,
            self.watchdog_ms,
            self.seed,
            self.spin,
            self.crash_seats,
            crashed.join(";"),
            self.total_meals,
            self.min_meals,
            self.max_meals,
            self.everyone_ate,
            self.watchdog_tripped,
            num(self.jain_fairness),
            elapsed,
            mps,
            wait,
            p50,
            p90,
            p99,
        );
        out
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes [`Self::to_csv`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(algorithm: AlgorithmKind) -> StressSpec {
        StressSpec {
            load: StressLoad::MealsPerSeat(8),
            ..StressSpec::new(TopologyFamily::Ring, 4, algorithm)
        }
    }

    #[test]
    fn meal_budget_stress_feeds_everyone_and_is_byte_reproducible() {
        let spec = small_spec(AlgorithmKind::Gdp2);
        let a = run_stress(&spec, false).unwrap();
        let b = run_stress(&spec, false).unwrap();
        assert!(a.succeeded());
        assert_eq!(a.total_meals, 32);
        assert_eq!(a.min_meals, 8);
        assert_eq!(a.max_meals, 8);
        assert_eq!(a.jain_fairness, 1.0);
        assert!(a.timing.is_none());
        // Two independent real-thread runs, identical serialized bytes: the
        // committed-artifact contract.
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        assert!(a.to_json().contains("\"elapsed_secs\": null"));
    }

    #[test]
    fn timing_fields_are_attached_on_request() {
        let spec = small_spec(AlgorithmKind::Gdp1);
        let report = run_stress(&spec, true).unwrap();
        assert!(report.succeeded());
        let timing = report.timing.as_ref().expect("timing requested");
        assert!(timing.elapsed_secs > 0.0);
        assert!(timing.meals_per_sec > 0.0);
        assert_eq!(timing.wait_histogram.iter().sum::<u64>(), 32);
        // Everyone ate, so the first-meal percentiles come from 4 real
        // samples; the bucket-floor estimator keeps them ordered.
        assert!(timing.first_meal_p50 >= 0.0);
        assert!(timing.first_meal_p90 >= timing.first_meal_p50);
        assert!(timing.first_meal_p99 >= timing.first_meal_p90);
        assert!(report.to_json().contains("\"first_meal_p50\": "));
        assert!(report.to_json().contains("\"wait_histogram_ns\": ["));
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[1].split(',').count(),
            stress_csv_header().split(',').count()
        );
    }

    #[test]
    fn duration_mode_measures_and_partial_threads_drive_a_subset() {
        let spec = StressSpec {
            threads: 2,
            load: StressLoad::DurationMs(40),
            ..StressSpec::new(TopologyFamily::Ring, 5, AlgorithmKind::Gdp2)
        };
        let report = run_stress(&spec, true).unwrap();
        assert_eq!(report.threads, 2);
        assert!(!report.watchdog_tripped);
        assert!(report.total_meals > 0);
        assert!(report.meals[2..].iter().all(|&m| m == 0));
        assert!(report.load.starts_with("duration_ms:"));
    }

    #[test]
    fn naive_on_a_contended_ring_is_bounded_by_the_watchdog() {
        // The naive baseline may or may not deadlock under a particular OS
        // schedule; the contract here is bounded termination, not the
        // verdict (the deterministic deadlock lives in
        // tests/runtime_vs_sim.rs, where the state is forced).
        let spec = StressSpec {
            watchdog_ms: 500,
            load: StressLoad::MealsPerSeat(3),
            ..StressSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Naive)
        };
        let report = run_stress(&spec, false).unwrap();
        assert_eq!(report.watchdog_ms, 500);
        // Either it squeezed the meals through or the watchdog fired; both
        // terminate and serialize.
        assert!(report.to_json().contains("\"kind\": \"runtime_stress\""));
    }

    #[test]
    fn crash_stress_exempts_victims_and_stays_byte_reproducible() {
        let spec = StressSpec {
            crash_seats: 2,
            load: StressLoad::MealsPerSeat(6),
            ..StressSpec::new(TopologyFamily::Ring, 5, AlgorithmKind::Gdp2)
        };
        let a = run_stress(&spec, false).unwrap();
        assert!(a.succeeded(), "survivors feed despite two crashes");
        assert_eq!(a.crash_seats, 2);
        assert_eq!(a.crashed_seats.len(), 2);
        assert!(a.total_meals < 30, "victims ate strictly less than budget");
        assert!(a.jain_fairness < 1.0, "crashes show up as unfairness");
        let json = a.to_json();
        assert!(json.contains("\"crash_seats\": 2"), "{json}");
        assert!(json.contains("\"crashed_seats\": ["), "{json}");
        // Crash runs replay: identical artifacts on a second execution.
        let b = run_stress(&spec, false).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn cell_keys_match_sweep_formatting() {
        let spec = StressSpec::new(TopologyFamily::Ring, 6, AlgorithmKind::Lr2);
        assert_eq!(spec.cell(), "ring/n6/LR2");
        assert_eq!(StressLoad::MealsPerSeat(9).name(), "meals:9");
        assert_eq!(StressLoad::DurationMs(70).name(), "duration_ms:70");
    }

    #[test]
    fn invalid_sizes_report_an_error() {
        let spec = StressSpec::new(TopologyFamily::Ring, 1, AlgorithmKind::Gdp2);
        assert!(run_stress(&spec, false).is_err());
    }
}
