//! The batch runner: drives every cell of an expanded grid through the
//! Monte-Carlo estimators and reduces it to a [`CellResult`].

use crate::check::{run_check, run_check_cached, CheckAdversarySpec, CheckSpec, ExactCellVerdict};
use crate::report::SweepReport;
use crate::spec::{ScenarioCell, ScenarioSpec};
use crate::store::{CellStore, ShardSpec, StoreLookup, StoreStats};
use gdp_analysis::montecarlo::estimate_liveness;
use gdp_analysis::TrialConfig;
use gdp_sim::SimConfig;
use gdp_topology::TopologyError;
use std::fmt;
use std::time::Instant;

/// Everything measured for one cell of the grid.
///
/// All fields except [`steps_per_sec`](Self::steps_per_sec) are derived
/// purely from seeds, so they are identical for every thread count; the
/// throughput field is wall-clock and only recorded when
/// [`SweepOptions::record_timing`] is set.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Stable cell key, `"<family>/n<size>/<ALGORITHM>"`.
    pub cell: String,
    /// Family name (re-parseable).
    pub family: String,
    /// The scale parameter the cell was built from.
    pub size: usize,
    /// Philosophers in the realized topology.
    pub philosophers: usize,
    /// Forks in the realized topology.
    pub forks: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Adversary name.
    pub adversary: String,
    /// Trials run.
    pub trials: u64,
    /// Step budget per trial.
    pub max_steps: u64,
    /// The resolved cell seed.
    pub seed: u64,
    /// Fraction of trials in which **no** philosopher ate within the budget
    /// (the finite-horizon deadlock/no-progress signature).
    pub deadlock_rate: f64,
    /// Fraction of trials in which at least one philosopher starved (the
    /// finite-horizon lockout signature).
    pub lockout_rate: f64,
    /// Mean first-meal step over the progressing trials (how long hunger
    /// lasts before the system first serves a meal); `0` when no trial
    /// progressed.
    pub mean_hunger: f64,
    /// Median first-meal step over the progressing trials (step-denominated;
    /// exact nearest-rank percentile, so bitwise thread-independent).
    pub first_meal_p50: f64,
    /// 90th-percentile first-meal step over the progressing trials.
    pub first_meal_p90: f64,
    /// 99th-percentile first-meal step over the progressing trials.
    pub first_meal_p99: f64,
    /// Mean over trials of the minimum meal count across philosophers.
    pub min_meals_mean: f64,
    /// Mean Jain fairness index of the per-philosopher meal counts.
    pub fairness_mean: f64,
    /// Scheduler steps per wall-clock second over the cell's trial batch
    /// (`trials * max_steps` steps of fixed work); `None` unless timing was
    /// recorded.
    pub steps_per_sec: Option<f64>,
    /// Trials whose final state was a **true deadlock** (no scheduling
    /// choice and no random outcome can ever change it).
    pub stuck_trials: u64,
    /// Trials whose final state violated the safety invariants.
    pub unsafe_trials: u64,
    /// The exact worst-case progress verdict for this cell, when the sweep
    /// ran with [`SweepOptions::exact_check`].
    pub exact: Option<ExactCellVerdict>,
}

impl CellResult {
    /// Whether a hard violation (true deadlock or safety breach) was
    /// observed in any trial — the signal behind `gdp sweep`'s nonzero
    /// exit.  Exact verdicts do not trip this: a `violated` exact verdict
    /// for LR1 is the *expected* theorem, not a defect of the run.
    #[must_use]
    pub fn violation_detected(&self) -> bool {
        self.stuck_trials > 0 || self.unsafe_trials > 0
    }

    /// One aligned human-readable row (the `gdp sweep` console format).
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<28} n={:<3} k={:<3} {:<6} deadlock={:>5.2} lockout={:>5.2} hunger={:>8.1} jain={:>5.3}{}{}{}",
            self.cell,
            self.philosophers,
            self.forks,
            self.algorithm,
            self.deadlock_rate,
            self.lockout_rate,
            self.mean_hunger,
            self.fairness_mean,
            if self.violation_detected() {
                format!(" VIOLATION(stuck={} unsafe={})", self.stuck_trials, self.unsafe_trials)
            } else {
                String::new()
            },
            match &self.exact {
                Some(exact) => format!(" exact={}({:.3})", exact.verdict, exact.progress_probability),
                None => String::new(),
            },
            match self.steps_per_sec {
                Some(sps) => format!(" {:>10.0} steps/s", sps),
                None => String::new(),
            }
        )
    }
}

/// Options controlling a sweep run.
#[derive(Clone, Default)]
pub struct SweepOptions {
    /// Record wall-clock throughput per cell.  Timing makes the JSON/CSV
    /// artifacts non-reproducible across machines and runs, so it is off by
    /// default and the determinism tests keep it off.
    pub record_timing: bool,
    /// Print each cell's row to stdout as it completes.
    pub progress: bool,
    /// Attach an exact worst-case progress verdict (`gdp-mcheck`) to every
    /// cell, with the given canonical-state budget; cells whose automaton
    /// exceeds the budget report `inconclusive`.  The verdicts are a pure
    /// function of the spec, so reproducibility is preserved.
    pub exact_check: Option<usize>,
    /// Structured-event sink for cell lifecycle and store events
    /// (`cell_start`/`cell_finish`/`store_hit`/`store_miss`/
    /// `store_quarantine`).  The sweep's logical clock is the cell's
    /// position in the deterministic grid expansion, so with a fixed spec
    /// the emitted stream is the same for every thread count.
    pub sink: Option<gdp_observe::SharedSink>,
}

impl fmt::Debug for SweepOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepOptions")
            .field("record_timing", &self.record_timing)
            .field("progress", &self.progress)
            .field("exact_check", &self.exact_check)
            .field("sink", &self.sink.as_ref().map(|_| "<EventSink>"))
            .finish()
    }
}

impl SweepOptions {
    /// No timing, no console output: the reproducible-artifact configuration.
    #[must_use]
    pub fn quiet() -> Self {
        SweepOptions::default()
    }

    /// Timing and console output on: the interactive CLI configuration.
    #[must_use]
    pub fn interactive() -> Self {
        SweepOptions {
            record_timing: true,
            progress: true,
            ..SweepOptions::default()
        }
    }
}

/// Error produced by a sweep run.
#[derive(Debug)]
pub enum SweepError {
    /// A cell's topology parameters were invalid for its family.
    Topology {
        /// The offending cell key.
        cell: String,
        /// The underlying builder error.
        source: TopologyError,
    },
    /// The spec expands to an empty grid.
    EmptyGrid,
    /// A completed cell could not be persisted to the attached store.
    Store {
        /// The cell whose record failed to persist.
        cell: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A store record carries a format version newer than this build.
    /// The record is presumed valid to a newer build and left untouched;
    /// the sweep refuses to shadow it rather than quarantining it.
    UnsupportedStore {
        /// The cell whose record is unreadable to this build.
        cell: String,
        /// The record's declared format version.
        version: u32,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Topology { cell, source } => {
                write!(f, "cell {cell}: {source}")
            }
            SweepError::EmptyGrid => write!(f, "the scenario grid is empty"),
            SweepError::Store { cell, message } => {
                write!(f, "cell {cell}: store write failed: {message}")
            }
            SweepError::UnsupportedStore { cell, version } => write!(
                f,
                "cell {cell}: store record has format v{version}, newer than this build \
                 (v{}) — upgrade gdp or move the record aside",
                crate::store::STORE_VERSION
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// Computes one cell of a grid: progress and lockout estimation over the
/// cell's trial budget (plus the exact verdict when
/// [`SweepOptions::exact_check`] is set).
///
/// This is the single-cell work unit behind [`run_sweep_durable`] and the
/// `gdp serve` worker pool: results are a pure function of `(spec store
/// context, cell key)` — bitwise identical for every thread count and every
/// scheduling of concurrent callers — which is what makes them cacheable in
/// a shared [`CellStore`].
///
/// # Errors
///
/// [`SweepError::Topology`] when the cell's topology parameters are invalid
/// for its family.
pub fn compute_cell(
    spec: &ScenarioSpec,
    cell: &ScenarioCell,
    options: &SweepOptions,
) -> Result<CellResult, SweepError> {
    compute_cell_durable(spec, cell, options, None, false).map(|(result, _)| result)
}

/// [`compute_cell`] with the exact check routed through a store's
/// **certificate cache**: with a `store` attached, the cell's exact
/// verdict is persisted as a certificate record the moment it is computed,
/// and with `reuse_certs` additionally set, a verified record answers it
/// from disk — byte-identical, certificates being byte-reproducible — so a
/// resumed `sweep --check` restores its exact columns without re-solving
/// the MDP even when the MC cell record was lost.
///
/// Returns the result plus the certificate-cache [`StoreStats`] (all zero
/// when no store is attached or the sweep runs without `--check`); callers
/// that know the cell's grid position turn these into `cert_hit`/
/// `cert_miss` events.
///
/// # Errors
///
/// As [`compute_cell`], plus [`SweepError::Store`] when the certificate
/// record cannot be persisted and [`SweepError::UnsupportedStore`] when
/// the record on disk belongs to a newer store format.
pub fn compute_cell_durable(
    spec: &ScenarioSpec,
    cell: &ScenarioCell,
    options: &SweepOptions,
    store: Option<&CellStore>,
    reuse_certs: bool,
) -> Result<(CellResult, StoreStats), SweepError> {
    let topology =
        cell.family
            .build(cell.size, cell.seed)
            .map_err(|source| SweepError::Topology {
                cell: cell.key.clone(),
                source,
            })?;
    let program = cell.algorithm.program();
    let config = TrialConfig {
        trials: spec.trials,
        max_steps: spec.max_steps,
        base_seed: cell.seed,
        threads: spec.threads,
        sim: SimConfig::default(),
    };
    let adversary_spec = spec.adversary;
    let make_adversary = |trial: u64| adversary_spec.build(cell.seed, trial);

    // One combined batch yields both liveness estimates: every trial runs
    // the full budget, so it is a fixed amount of work and the honest basis
    // for a throughput figure.
    let started = Instant::now();
    let estimate = estimate_liveness(&topology, &program, make_adversary, &config);
    let elapsed_secs = started.elapsed().as_secs_f64();
    let (progress, lockout) = (estimate.progress.clone(), estimate.lockout.clone());

    let steps_per_sec = options
        .record_timing
        .then(|| (spec.trials * spec.max_steps) as f64 / elapsed_secs);

    let mut cert_stats = StoreStats::default();
    let exact = match options.exact_check {
        Some(max_states) => {
            let check_spec = CheckSpec {
                max_states,
                threads: spec.threads,
                topology_seed: cell.seed,
                // Quantify over the class the sweep's scheduler belongs
                // to, so a crash:<f> row never pairs faulty MC columns
                // with an all-fair "certified".
                adversary: CheckAdversarySpec::for_sweep_adversary(spec.adversary),
                ..CheckSpec::new(cell.family, cell.size, cell.algorithm)
            };
            let report = match store {
                Some(store) => {
                    let (report, stats) = run_check_cached(&check_spec, store, reuse_certs)
                        .map_err(|e| match e {
                            crate::check::CheckStoreError::Unsupported { version, .. } => {
                                SweepError::UnsupportedStore {
                                    cell: cell.key.clone(),
                                    version,
                                }
                            }
                            crate::check::CheckStoreError::Check(message) => SweepError::Topology {
                                cell: cell.key.clone(),
                                source: gdp_topology::TopologyError::InvalidParameter { message },
                            },
                            other => SweepError::Store {
                                cell: cell.key.clone(),
                                message: other.to_string(),
                            },
                        })?;
                    cert_stats = stats;
                    report
                }
                None => run_check(&check_spec).map_err(|message| SweepError::Topology {
                    cell: cell.key.clone(),
                    source: gdp_topology::TopologyError::InvalidParameter { message },
                })?,
            };
            let certificate = &report.certificates[0];
            Some(ExactCellVerdict {
                verdict: report.verdict().name().to_string(),
                progress_probability: certificate.probability,
                states: certificate.states,
            })
        }
        None => None,
    };

    let result = CellResult {
        cell: cell.key.clone(),
        family: cell.family.name(),
        size: cell.size,
        philosophers: topology.num_philosophers(),
        forks: topology.num_forks(),
        algorithm: cell.algorithm.name().to_string(),
        adversary: spec.adversary.name(),
        trials: spec.trials,
        max_steps: spec.max_steps,
        seed: cell.seed,
        deadlock_rate: 1.0 - progress.progress_fraction,
        lockout_rate: 1.0 - lockout.lockout_free_fraction,
        mean_hunger: progress.first_meal_mean,
        first_meal_p50: progress.first_meal_p50,
        first_meal_p90: progress.first_meal_p90,
        first_meal_p99: progress.first_meal_p99,
        min_meals_mean: lockout.min_meals_mean,
        fairness_mean: lockout.fairness_mean,
        steps_per_sec,
        stuck_trials: estimate.violations.stuck_trials,
        unsafe_trials: estimate.violations.unsafe_trials,
        exact,
    };
    Ok((result, cert_stats))
}

/// Runs the whole sweep, invoking `on_cell` as each cell completes (the
/// streaming hook used by the CLI), and returns the collected report.
///
/// Cells run sequentially in expansion order; each cell's trials are fanned
/// out over [`ScenarioSpec::threads`] workers with the bitwise-deterministic
/// trial runner, so the report content is independent of the thread count.
///
/// # Errors
///
/// Fails fast on the first cell whose topology parameters are invalid, or
/// when the grid is empty.
pub fn run_sweep_with<F>(
    spec: &ScenarioSpec,
    options: &SweepOptions,
    on_cell: F,
) -> Result<SweepReport, SweepError>
where
    F: FnMut(&CellResult),
{
    run_sweep_durable(spec, options, None, false, None, on_cell).map(|(report, _)| report)
}

/// The durable variant of [`run_sweep_with`]: the crash-safe sweep loop
/// behind `gdp sweep --store/--resume/--shard`.
///
/// * With a `store` attached, every computed cell is persisted atomically
///   the moment it completes, so an interrupted run loses at most the cell
///   in flight.
/// * With `resume` additionally set, each cell is first looked up in the
///   store; verified-complete records are reused bit-for-bit (the report is
///   indistinguishable from recomputing) and invalid ones are quarantined
///   and recomputed.
/// * With a `shard`, only the cells the shard owns are processed.  A shard
///   of a nonempty grid may legitimately own zero cells and yields an empty
///   report; [`SweepError::EmptyGrid`] still flags a spec whose *full*
///   expansion is empty.
///
/// Cached cells flow through `on_cell` and the progress printer exactly
/// like computed ones.
///
/// # Errors
///
/// As [`run_sweep_with`], plus [`SweepError::Store`] when a record cannot
/// be persisted.
pub fn run_sweep_durable<F>(
    spec: &ScenarioSpec,
    options: &SweepOptions,
    store: Option<&CellStore>,
    resume: bool,
    shard: Option<ShardSpec>,
    mut on_cell: F,
) -> Result<(SweepReport, StoreStats), SweepError>
where
    F: FnMut(&CellResult),
{
    let cells = spec.expand();
    if cells.is_empty() {
        return Err(SweepError::EmptyGrid);
    }
    let shard = shard.unwrap_or_else(ShardSpec::full);
    let mut stats = StoreStats::default();
    let mut results = Vec::with_capacity(cells.len().div_ceil(shard.count));
    let emit = |event: gdp_observe::Event| {
        if let Some(sink) = &options.sink {
            sink.record(&event);
        }
    };
    for (position, cell) in cells.iter().enumerate() {
        if !shard.owns(position) {
            continue;
        }
        let clock = position as u64;
        emit(gdp_observe::Event::CellStart {
            clock,
            cell: cell.key.clone(),
        });
        let mut cached = None;
        if resume {
            if let Some(store) = store {
                match store.lookup(&cell.key) {
                    StoreLookup::Hit(result) => {
                        emit(gdp_observe::Event::StoreHit {
                            clock,
                            cell: cell.key.clone(),
                        });
                        cached = Some(*result);
                    }
                    StoreLookup::Quarantined { .. } => {
                        emit(gdp_observe::Event::StoreQuarantine {
                            clock,
                            cell: cell.key.clone(),
                        });
                        stats.quarantined += 1;
                    }
                    StoreLookup::Absent => {
                        emit(gdp_observe::Event::StoreMiss {
                            clock,
                            cell: cell.key.clone(),
                        });
                    }
                    StoreLookup::Unsupported { version } => {
                        return Err(SweepError::UnsupportedStore {
                            cell: cell.key.clone(),
                            version,
                        });
                    }
                }
            }
        }
        let result = match cached {
            Some(result) => {
                stats.reused += 1;
                result
            }
            None => {
                let (result, cert_stats) =
                    compute_cell_durable(spec, cell, options, store, resume)?;
                if cert_stats.reused > 0 {
                    emit(gdp_observe::Event::CertHit {
                        clock,
                        cell: cell.key.clone(),
                    });
                }
                if cert_stats.computed > 0 {
                    emit(gdp_observe::Event::CertMiss {
                        clock,
                        cell: cell.key.clone(),
                    });
                }
                if let Some(store) = store {
                    store.save(&result).map_err(|e| SweepError::Store {
                        cell: cell.key.clone(),
                        message: e.to_string(),
                    })?;
                }
                stats.computed += 1;
                result
            }
        };
        if options.progress {
            println!("{}", result.row());
        }
        emit(gdp_observe::Event::CellFinish {
            clock,
            cell: cell.key.clone(),
        });
        on_cell(&result);
        results.push(result);
    }
    Ok((SweepReport::new(spec, results), stats))
}

/// [`run_sweep_with`] without a streaming hook.
///
/// # Errors
///
/// See [`run_sweep_with`].
pub fn run_sweep(spec: &ScenarioSpec, options: &SweepOptions) -> Result<SweepReport, SweepError> {
    run_sweep_with(spec, options, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AdversarySpec, SeedPolicy};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("tiny")
            .with_families_str("ring,star")
            .unwrap()
            .with_sizes([4])
            .with_algorithms_str("gdp1")
            .unwrap()
            .with_trials(3)
            .with_max_steps(8_000)
            .with_seed_policy(SeedPolicy::PerCell(1))
    }

    #[test]
    fn sweep_runs_and_reports_every_cell() {
        let report = run_sweep(&tiny_spec(), &SweepOptions::quiet()).unwrap();
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.trials, 3);
            assert_eq!(cell.deadlock_rate, 0.0, "GDP1 must progress: {}", cell.cell);
            assert!(
                cell.steps_per_sec.is_none(),
                "quiet sweeps record no timing"
            );
            // First-meal percentiles are exact nearest-rank figures over the
            // progressing trials, so they must be ordered and positive here.
            assert!(cell.first_meal_p50 > 0.0, "{}", cell.cell);
            assert!(cell.first_meal_p90 >= cell.first_meal_p50, "{}", cell.cell);
            assert!(cell.first_meal_p99 >= cell.first_meal_p90, "{}", cell.cell);
        }
    }

    #[test]
    fn sweep_sink_sees_cell_lifecycle_events_keyed_by_grid_position() {
        use gdp_observe::{Event, MemorySink};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let options = SweepOptions {
            sink: Some(sink.clone()),
            ..SweepOptions::default()
        };
        let report = run_sweep(&tiny_spec(), &options).unwrap();
        let events = sink.take();
        // One cell_start + one cell_finish per cell, clocked by grid
        // position; no store events without a store attached.
        let starts: Vec<(u64, String)> = events
            .iter()
            .filter_map(|e| match e {
                Event::CellStart { clock, cell } => Some((*clock, cell.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            starts,
            vec![
                (0, "ring/n4/GDP1".to_string()),
                (1, "star/n4/GDP1".to_string())
            ]
        );
        let finishes = events
            .iter()
            .filter(|e| matches!(e, Event::CellFinish { .. }))
            .count();
        assert_eq!(finishes, report.cells.len());
        assert_eq!(events.len(), 2 * report.cells.len());
    }

    #[test]
    fn streaming_hook_sees_cells_in_expansion_order() {
        let mut seen = Vec::new();
        run_sweep_with(&tiny_spec(), &SweepOptions::quiet(), |c| {
            seen.push(c.cell.clone());
        })
        .unwrap();
        assert_eq!(seen, vec!["ring/n4/GDP1", "star/n4/GDP1"]);
    }

    #[test]
    fn sweeps_are_bitwise_identical_across_thread_counts() {
        let base = tiny_spec().with_adversary(AdversarySpec::UniformRandom);
        let serial = run_sweep(&base.clone().with_threads(1), &SweepOptions::quiet()).unwrap();
        for threads in [2usize, 4, 16] {
            let parallel =
                run_sweep(&base.clone().with_threads(threads), &SweepOptions::quiet()).unwrap();
            assert_eq!(
                serial.cells, parallel.cells,
                "sweep must be identical with {threads} threads"
            );
            assert_eq!(serial.to_json(), parallel.to_json());
            assert_eq!(serial.to_csv(), parallel.to_csv());
        }
    }

    #[test]
    fn timing_is_recorded_only_on_request() {
        let spec = tiny_spec();
        let timed = run_sweep(
            &spec,
            &SweepOptions {
                record_timing: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(timed.cells.iter().all(|c| c.steps_per_sec.unwrap() > 0.0));
        assert!(timed.cells[0].row().contains("steps/s"));
    }

    #[test]
    fn invalid_cells_fail_fast_with_the_cell_key() {
        let spec = tiny_spec().with_sizes([1]); // ring of 1 is invalid
        let err = run_sweep(&spec, &SweepOptions::quiet()).unwrap_err();
        assert!(err.to_string().contains("ring/n1/GDP1"), "{err}");
        let empty = tiny_spec().with_sizes([]);
        assert!(matches!(
            run_sweep(&empty, &SweepOptions::quiet()),
            Err(SweepError::EmptyGrid)
        ));
    }
}
