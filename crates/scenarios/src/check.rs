//! Exact checking wired into the scenario-spec machinery.
//!
//! [`CheckSpec`] names a cell the way a sweep does — *topology family ×
//! size × algorithm* — plus an objective, and [`run_check`] resolves it
//! through `gdp-mcheck`: build the exact MDP, solve it, extract a
//! counterexample schedule when the property fails, and return
//! byte-reproducible [`Certificate`]s.  This is the engine behind
//! `gdp check`, and [`exact_cell_verdict`] is the trimmed-down variant the
//! sweep runner calls to put exact verdicts *next to* the Monte-Carlo
//! estimates in sweep reports.
//!
//! This module is deliberately non-generic: `gdp-mcheck`'s builders are
//! monomorphised here (over `gdp_algorithms::AnyProgram`) so every caller —
//! including the unoptimised CLI binary in dev builds — runs the optimised
//! instantiation.

use crate::family::TopologyFamily;
use gdp_algorithms::AlgorithmKind;
pub use gdp_mcheck::certificate::Verdict as CheckVerdict;
use gdp_mcheck::certificate::Verdict;
use gdp_mcheck::strategy::{counterexample_dot, extract_counterexample, CounterexampleSchedule};
use gdp_mcheck::{
    build_mdp, build_restricted_mdp, solve, BuildOptions, Certificate, CheckTarget,
    ScheduleRestriction, SolveOptions,
};
use gdp_topology::{symmetry, PhilosopherId, Topology};
use std::fmt::Write as _;

/// The adversary class a check quantifies over, as named on the command
/// line (`gdp check --adversary`).
///
/// The default is the paper's: **all** fair schedulers, which contains
/// every *fair* catalog family.  The restricted classes relate to the
/// `gdp-adversary` catalog as follows (tabulated in
/// `docs/ADVERSARIES.md`):
///
/// * `crash:<f>` contains the catalog's `crash:<f>` scheduler exactly
///   (same victim budget, every crash timing/placement), so a
///   `certified` verdict covers every Monte-Carlo crash run;
/// * `kbounded:<K>` contains every scheduler whose waits stay below `K`.
///   Mind the parameter mapping: the catalog's dwell scheduler
///   `kbounded:<k>` produces gaps of `k·(n−1)` steps, so it lies in the
///   exact class `kbounded:<k·(n−1)>` — **not** in `kbounded:<k>` for
///   `k ≥ 2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckAdversarySpec {
    /// All fair schedulers (`--adversary fair`, the default).
    AllFair,
    /// Only k-bounded-fair schedulers (`--adversary kbounded:<k>`).
    KBounded {
        /// The wait bound that triggers forcing.
        k: u32,
    },
    /// Fair schedulers plus up to `crashes` crash-stop faults
    /// (`--adversary crash:<f>`).
    CrashStop {
        /// Maximum number of crash actions.
        crashes: u32,
    },
}

impl CheckAdversarySpec {
    /// The exact class matching a sweep's concrete scheduler: `crash:<f>`
    /// maps to the crash-stop class with the same budget (the sweep's
    /// faulty scheduler is a member, so the verdict speaks about the
    /// row); every *fair* family — dwell round-robin included — is a
    /// member of the all-fair default.
    #[must_use]
    pub fn for_sweep_adversary(adversary: gdp_adversary::AdversaryKind) -> Self {
        match adversary {
            gdp_adversary::AdversaryKind::CrashStop { crashes } => {
                CheckAdversarySpec::CrashStop { crashes }
            }
            _ => CheckAdversarySpec::AllFair,
        }
    }

    /// The product-MDP restriction, or `None` for the unrestricted model.
    #[must_use]
    pub fn restriction(self) -> Option<ScheduleRestriction> {
        match self {
            CheckAdversarySpec::AllFair => None,
            CheckAdversarySpec::KBounded { k } => Some(ScheduleRestriction::KBounded { k }),
            CheckAdversarySpec::CrashStop { crashes } => Some(ScheduleRestriction::CrashStop {
                max_crashes: crashes,
            }),
        }
    }
}

impl std::str::FromStr for CheckAdversarySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "fair" | "all-fair" | "all" => return Ok(CheckAdversarySpec::AllFair),
            _ => {}
        }
        if let Some(k) = lower
            .strip_prefix("kbounded:")
            .or_else(|| lower.strip_prefix("kbounded-rr:"))
        {
            return match k.parse() {
                Ok(k) if k >= 1 => Ok(CheckAdversarySpec::KBounded { k }),
                _ => Err(format!("invalid k in adversary class {s:?}")),
            };
        }
        if let Some(f) = lower
            .strip_prefix("crash:")
            .or_else(|| lower.strip_prefix("crash-stop:"))
        {
            return f
                .parse()
                .map(|crashes| CheckAdversarySpec::CrashStop { crashes })
                .map_err(|_| format!("invalid crash count in adversary class {s:?}"));
        }
        Err(format!(
            "invalid adversary class {s:?}: expected fair, kbounded:<k> or crash:<f>"
        ))
    }
}

/// The objective of a check, as named on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckTargetSpec {
    /// Worst-case progress: some philosopher eats (`--target progress`).
    Progress,
    /// Worst-case individual liveness of one philosopher
    /// (`--target philosopher:<i>`).
    Philosopher(u32),
    /// Lockout-freedom: individual liveness of every philosopher, checked
    /// once per symmetry orbit (`--target lockout`).
    Lockout,
}

impl std::str::FromStr for CheckTargetSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "progress" => Ok(CheckTargetSpec::Progress),
            "lockout" => Ok(CheckTargetSpec::Lockout),
            other => match other.strip_prefix("philosopher:") {
                Some(index) => index
                    .parse()
                    .map(CheckTargetSpec::Philosopher)
                    .map_err(|_| format!("invalid philosopher index in target {s:?}")),
                None => Err(format!(
                    "invalid target {s:?}: expected progress, lockout or philosopher:<i>"
                )),
            },
        }
    }
}

/// A fully specified exact check: one sweep-style cell plus an objective.
#[derive(Clone, Debug)]
pub struct CheckSpec {
    /// Topology family (same catalog as `gdp sweep`).
    pub family: TopologyFamily,
    /// Family scale parameter.
    pub size: usize,
    /// The algorithm to check.
    pub algorithm: AlgorithmKind,
    /// The objective.
    pub target: CheckTargetSpec,
    /// State budget before the model is truncated (inconclusive verdict).
    pub max_states: usize,
    /// Worker threads for frontier expansion (`0` = all cores); the
    /// certificate is byte-identical for every value.
    pub threads: usize,
    /// Symmetry quotient: `None` resolves automatically from
    /// [`AlgorithmKind::is_relabelling_invariant`].
    pub symmetry: Option<bool>,
    /// Also compute the exact expected steps-to-first-meal under the
    /// uniform random scheduler.
    pub expected_steps: bool,
    /// Seed used to *build* random topology families (never for the check
    /// itself — every draw is enumerated, not sampled).
    pub topology_seed: u64,
    /// The adversary class to quantify over.  Restricted classes build the
    /// product MDP of `gdp-mcheck::restricted` (serial, quotient-free) and
    /// skip counterexample extraction — the replayer speaks engine states,
    /// not product states.
    pub adversary: CheckAdversarySpec,
}

impl CheckSpec {
    /// A progress check of `algorithm` on `family` at `size` with the
    /// default budget.
    #[must_use]
    pub fn new(family: TopologyFamily, size: usize, algorithm: AlgorithmKind) -> Self {
        CheckSpec {
            family,
            size,
            algorithm,
            target: CheckTargetSpec::Progress,
            max_states: 6_000_000,
            threads: 0,
            symmetry: None,
            expected_steps: false,
            topology_seed: 0,
            adversary: CheckAdversarySpec::AllFair,
        }
    }

    fn effective_symmetry(&self) -> bool {
        self.symmetry
            .unwrap_or_else(|| self.algorithm.is_relabelling_invariant())
    }
}

/// The result of [`run_check`]: one certificate per checked objective,
/// plus the extracted counterexample when one exists.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The checked cell key, `"<family>/n<size>/<ALGORITHM>"`.
    pub cell: String,
    /// One certificate per checked target, in a deterministic order.
    pub certificates: Vec<Certificate>,
    /// The extracted worst-case schedule defeating the first violated
    /// target, if any.
    pub counterexample: Option<CounterexampleSchedule>,
    /// Graphviz rendering of the counterexample lasso.
    pub counterexample_dot: Option<String>,
}

impl CheckReport {
    /// The worst verdict across all certificates (`Violated` dominates,
    /// then `Inconclusive`, then `Certified`).
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        let mut verdict = Verdict::Certified;
        for certificate in &self.certificates {
            match certificate.verdict() {
                Verdict::Violated => return Verdict::Violated,
                Verdict::Inconclusive => verdict = Verdict::Inconclusive,
                Verdict::Certified => {}
            }
        }
        verdict
    }

    /// Renders every certificate as one stable text block (the `gdp check`
    /// stdout format: byte-identical across runs and thread counts).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cell:              {}", self.cell);
        for certificate in &self.certificates {
            out.push_str(&certificate.render());
        }
        let _ = writeln!(out, "overall verdict:   {}", self.verdict().name());
        out
    }
}

/// Resolves and runs an exact check.
///
/// # Errors
///
/// Returns a message when the topology parameters are invalid or a
/// `philosopher:<i>` target is out of range.
pub fn run_check(spec: &CheckSpec) -> Result<CheckReport, String> {
    let topology = spec
        .family
        .build(spec.size, spec.topology_seed)
        .map_err(|e| {
            format!(
                "cannot build {} at n={}: {e}",
                spec.family.name(),
                spec.size
            )
        })?;
    let cell = format!(
        "{}/n{}/{}",
        spec.family.name(),
        spec.size,
        spec.algorithm.name()
    );
    let targets: Vec<CheckTarget> = match spec.target {
        CheckTargetSpec::Progress => vec![CheckTarget::Progress],
        CheckTargetSpec::Philosopher(index) => {
            if index as usize >= topology.num_philosophers() {
                return Err(format!(
                    "philosopher {index} is out of range for {} (n={})",
                    cell,
                    topology.num_philosophers()
                ));
            }
            vec![CheckTarget::PhilosopherEats(PhilosopherId::new(index))]
        }
        CheckTargetSpec::Lockout => lockout_representatives(&topology, spec.effective_symmetry())
            .into_iter()
            .map(CheckTarget::PhilosopherEats)
            .collect(),
    };

    let build_options = BuildOptions::default()
        .with_max_states(spec.max_states)
        .with_symmetry(spec.effective_symmetry())
        .with_threads(spec.threads);
    let solve_options = SolveOptions {
        // Expected-steps iteration averages over schedule choices, which
        // only makes sense in the unrestricted model (restricted products
        // add crash choices / forced rows).
        expected_steps: spec.expected_steps && spec.adversary == CheckAdversarySpec::AllFair,
        ..SolveOptions::default()
    };

    let program = spec.algorithm.program();
    let restriction = spec.adversary.restriction();
    let mut certificates = Vec::with_capacity(targets.len());
    let mut counterexample = None;
    let mut counterexample_dot_out = None;
    for target in targets {
        let mdp = match restriction {
            None => build_mdp(&topology, &program, target, &build_options),
            Some(restriction) => {
                build_restricted_mdp(&topology, &program, target, restriction, &build_options)
            }
        };
        let solution = solve(&mdp, &solve_options);
        // Counterexample replay speaks plain engine states; restricted
        // product states carry scheduler bookkeeping the replayer cannot
        // reconstruct, so extraction is limited to the unrestricted model.
        let schedule = if restriction.is_none()
            && counterexample.is_none()
            && !solution.holds_with_probability_one()
        {
            extract_counterexample(
                &topology,
                &program,
                &build_options.sim,
                &mdp,
                &solution,
                &[0, 1, 2, 3, 4, 5, 6, 7],
                counterexample_length(&topology),
            )
        } else {
            None
        };
        let mut certificate = Certificate::new(
            &topology,
            spec.algorithm.name(),
            target,
            &build_options.sim,
            &mdp,
            &solution,
            schedule.as_ref(),
        );
        if let Some(restriction) = restriction {
            certificate = certificate.with_adversary_class(restriction.describe());
        }
        certificates.push(certificate);
        if let Some(schedule) = schedule {
            counterexample_dot_out = Some(counterexample_dot(
                &topology,
                &program,
                &build_options.sim,
                &schedule,
            ));
            counterexample = Some(schedule);
        }
    }
    Ok(CheckReport {
        cell,
        certificates,
        counterexample,
        counterexample_dot: counterexample_dot_out,
    })
}

/// A long-enough starvation demonstration: every philosopher gets many
/// scheduling opportunities.
fn counterexample_length(topology: &Topology) -> usize {
    (topology.num_philosophers() * 120).max(360)
}

/// One philosopher per symmetry orbit (all of them when symmetry is off):
/// individual liveness is isomorphic across an orbit, so checking a
/// representative suffices.
fn lockout_representatives(topology: &Topology, use_symmetry: bool) -> Vec<PhilosopherId> {
    let n = topology.num_philosophers();
    if !use_symmetry {
        return topology.philosopher_ids().collect();
    }
    let autos = symmetry::automorphisms(topology, 64);
    let mut orbit = vec![u32::MAX; n];
    for p in 0..n {
        if orbit[p] != u32::MAX {
            continue;
        }
        for auto in &autos {
            let image = auto.phil_map[p].index();
            if orbit[image] == u32::MAX {
                orbit[image] = p as u32;
            }
        }
    }
    (0..n)
        .filter(|&p| orbit[p] == p as u32)
        .map(|p| PhilosopherId::new(p as u32))
        .collect()
}

/// The exact verdict attached to one sweep cell (the `--check` columns of
/// `gdp sweep`): a worst-case progress check with the given state budget.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactCellVerdict {
    /// `certified`, `violated` or `inconclusive`.
    pub verdict: String,
    /// Worst-case (fair-adversary) progress probability; exact when the
    /// verdict is not `inconclusive`.
    pub progress_probability: f64,
    /// Canonical states explored.
    pub states: usize,
}

/// Runs the trimmed-down exact progress check a sweep attaches to a cell,
/// quantifying over `adversary` — the sweep runner passes the class
/// matching the sweep's scheduler ([`CheckAdversarySpec::for_sweep_adversary`]),
/// so the exact columns and the Monte-Carlo columns of a row never
/// contradict each other.
///
/// # Errors
///
/// Returns a message when the topology cannot be built.
pub fn exact_cell_verdict(
    family: TopologyFamily,
    size: usize,
    algorithm: AlgorithmKind,
    topology_seed: u64,
    max_states: usize,
    threads: usize,
    adversary: CheckAdversarySpec,
) -> Result<ExactCellVerdict, String> {
    let spec = CheckSpec {
        max_states,
        threads,
        topology_seed,
        adversary,
        ..CheckSpec::new(family, size, algorithm)
    };
    let report = run_check(&spec)?;
    let certificate = &report.certificates[0];
    Ok(ExactCellVerdict {
        verdict: report.verdict().name().to_string(),
        progress_probability: certificate.probability,
        states: certificate.states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gdp1_ring4_progress_check_certifies_exactly_one() {
        let spec = CheckSpec::new(TopologyFamily::Ring, 4, AlgorithmKind::Gdp1);
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Certified);
        assert_eq!(report.certificates[0].probability, 1.0);
        assert!(report.counterexample.is_none());
        assert!(report.render().contains("overall verdict:   certified"));
    }

    #[test]
    fn naive_ring3_progress_check_finds_the_deadlock_with_a_schedule() {
        let spec = CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Naive);
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Violated);
        let certificate = &report.certificates[0];
        assert!(certificate.deadlock_states > 0);
        assert_eq!(certificate.probability, 0.0);
        let schedule = report.counterexample.as_ref().expect("deadlock schedule");
        assert!(!schedule.steps.is_empty());
        assert!(report
            .counterexample_dot
            .as_ref()
            .unwrap()
            .starts_with("digraph"));
    }

    #[test]
    fn lr1_ring3_lockout_check_finds_sure_starvation_per_orbit() {
        let spec = CheckSpec {
            target: CheckTargetSpec::Lockout,
            ..CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Lr1)
        };
        let report = run_check(&spec).unwrap();
        // All three philosophers are one rotation orbit: one certificate.
        assert_eq!(report.certificates.len(), 1);
        assert_eq!(report.verdict(), Verdict::Violated);
        assert_eq!(report.certificates[0].probability, 0.0);
        assert!(report.counterexample.is_some());
    }

    #[test]
    fn check_reports_are_reproducible_across_thread_counts() {
        let base = CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Gdp1);
        let serial = run_check(&CheckSpec {
            threads: 1,
            ..base.clone()
        })
        .unwrap();
        let parallel = run_check(&CheckSpec { threads: 4, ..base }).unwrap();
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn exact_cell_verdicts_report_budget_exhaustion_as_inconclusive() {
        let tiny = exact_cell_verdict(
            TopologyFamily::Ring,
            5,
            AlgorithmKind::Gdp1,
            0,
            100,
            1,
            CheckAdversarySpec::AllFair,
        )
        .unwrap();
        assert_eq!(tiny.verdict, "inconclusive");
        assert_eq!(tiny.states, 100);
        let real = exact_cell_verdict(
            TopologyFamily::Ring,
            3,
            AlgorithmKind::Lr1,
            0,
            100_000,
            1,
            CheckAdversarySpec::AllFair,
        )
        .unwrap();
        assert_eq!(real.verdict, "certified");
        assert_eq!(real.progress_probability, 1.0);
    }

    #[test]
    fn sweep_exact_columns_match_the_sweep_adversary_class() {
        use gdp_adversary::AdversaryKind;
        // Fair families map to the all-fair default; the crash family maps
        // to the crash class with the same budget...
        assert_eq!(
            CheckAdversarySpec::for_sweep_adversary(AdversaryKind::UniformRandom),
            CheckAdversarySpec::AllFair
        );
        assert_eq!(
            CheckAdversarySpec::for_sweep_adversary(AdversaryKind::KBoundedRoundRobin { k: 4 }),
            CheckAdversarySpec::AllFair
        );
        assert_eq!(
            CheckAdversarySpec::for_sweep_adversary(AdversaryKind::CrashStop { crashes: 1 }),
            CheckAdversarySpec::CrashStop { crashes: 1 }
        );
        // ...so a crash:1 GDP1 ring-3 cell reports the crash-class verdict
        // (violated, probability 0) instead of a contradictory all-fair
        // "certified" next to faulty Monte-Carlo columns.
        let exact = exact_cell_verdict(
            TopologyFamily::Ring,
            3,
            AlgorithmKind::Gdp1,
            0,
            2_000_000,
            1,
            CheckAdversarySpec::for_sweep_adversary(AdversaryKind::CrashStop { crashes: 1 }),
        )
        .unwrap();
        assert_eq!(exact.verdict, "violated");
        assert_eq!(exact.progress_probability, 0.0);
    }

    #[test]
    fn restricted_checks_run_and_stamp_the_adversary_class() {
        // The crash-stop class defeats GDP1 progress even on the 3-ring
        // (see gdp-mcheck::restricted): violated, with the class named in
        // the certificate.
        let spec = CheckSpec {
            adversary: CheckAdversarySpec::CrashStop { crashes: 1 },
            ..CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Gdp1)
        };
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Violated);
        assert!(report.counterexample.is_none(), "no replay for products");
        let rendered = report.render();
        assert!(
            rendered.contains("adversaries:       fair schedulers with up to 1 crash-stop"),
            "{rendered}"
        );

        // The k-bounded class is a *subset* of all fair schedulers: GDP1
        // progress stays certified.
        let spec = CheckSpec {
            adversary: CheckAdversarySpec::KBounded { k: 2 },
            ..CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Gdp1)
        };
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Certified);
        assert!(report
            .render()
            .contains("adversaries:       k-bounded-fair schedulers (k=2)"));
    }

    #[test]
    fn check_adversary_specs_parse() {
        assert_eq!(
            "fair".parse::<CheckAdversarySpec>().unwrap(),
            CheckAdversarySpec::AllFair
        );
        assert_eq!(
            "kbounded:3".parse::<CheckAdversarySpec>().unwrap(),
            CheckAdversarySpec::KBounded { k: 3 }
        );
        assert_eq!(
            "crash:2".parse::<CheckAdversarySpec>().unwrap(),
            CheckAdversarySpec::CrashStop { crashes: 2 }
        );
        assert!("kbounded:0".parse::<CheckAdversarySpec>().is_err());
        assert!("uniform-random".parse::<CheckAdversarySpec>().is_err());
        assert_eq!(CheckAdversarySpec::AllFair.restriction(), None);
    }

    #[test]
    fn target_specs_parse() {
        assert_eq!(
            "progress".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Progress
        );
        assert_eq!(
            "lockout".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Lockout
        );
        assert_eq!(
            "philosopher:2".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Philosopher(2)
        );
        assert!("philosopher:x".parse::<CheckTargetSpec>().is_err());
        assert!("nope".parse::<CheckTargetSpec>().is_err());
    }
}
