//! Exact checking wired into the scenario-spec machinery.
//!
//! [`CheckSpec`] names a cell the way a sweep does — *topology family ×
//! size × algorithm* — plus an objective, and [`run_check`] resolves it
//! through `gdp-mcheck`: build the exact MDP, solve it, extract a
//! counterexample schedule when the property fails, and return
//! byte-reproducible [`Certificate`]s.  This is the engine behind
//! `gdp check`, and [`exact_cell_verdict`] is the trimmed-down variant the
//! sweep runner calls to put exact verdicts *next to* the Monte-Carlo
//! estimates in sweep reports.
//!
//! This module is deliberately non-generic: `gdp-mcheck`'s builders are
//! monomorphised here (over `gdp_algorithms::AnyProgram`) so every caller —
//! including the unoptimised CLI binary in dev builds — runs the optimised
//! instantiation.

use crate::family::TopologyFamily;
use gdp_algorithms::AlgorithmKind;
pub use gdp_mcheck::certificate::Verdict as CheckVerdict;
use gdp_mcheck::certificate::Verdict;
use gdp_mcheck::strategy::{counterexample_dot, extract_counterexample, CounterexampleSchedule};
use gdp_mcheck::{build_mdp, solve, BuildOptions, Certificate, CheckTarget, SolveOptions};
use gdp_topology::{symmetry, PhilosopherId, Topology};
use std::fmt::Write as _;

/// The objective of a check, as named on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckTargetSpec {
    /// Worst-case progress: some philosopher eats (`--target progress`).
    Progress,
    /// Worst-case individual liveness of one philosopher
    /// (`--target philosopher:<i>`).
    Philosopher(u32),
    /// Lockout-freedom: individual liveness of every philosopher, checked
    /// once per symmetry orbit (`--target lockout`).
    Lockout,
}

impl std::str::FromStr for CheckTargetSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "progress" => Ok(CheckTargetSpec::Progress),
            "lockout" => Ok(CheckTargetSpec::Lockout),
            other => match other.strip_prefix("philosopher:") {
                Some(index) => index
                    .parse()
                    .map(CheckTargetSpec::Philosopher)
                    .map_err(|_| format!("invalid philosopher index in target {s:?}")),
                None => Err(format!(
                    "invalid target {s:?}: expected progress, lockout or philosopher:<i>"
                )),
            },
        }
    }
}

/// A fully specified exact check: one sweep-style cell plus an objective.
#[derive(Clone, Debug)]
pub struct CheckSpec {
    /// Topology family (same catalog as `gdp sweep`).
    pub family: TopologyFamily,
    /// Family scale parameter.
    pub size: usize,
    /// The algorithm to check.
    pub algorithm: AlgorithmKind,
    /// The objective.
    pub target: CheckTargetSpec,
    /// State budget before the model is truncated (inconclusive verdict).
    pub max_states: usize,
    /// Worker threads for frontier expansion (`0` = all cores); the
    /// certificate is byte-identical for every value.
    pub threads: usize,
    /// Symmetry quotient: `None` resolves automatically from
    /// [`AlgorithmKind::is_relabelling_invariant`].
    pub symmetry: Option<bool>,
    /// Also compute the exact expected steps-to-first-meal under the
    /// uniform random scheduler.
    pub expected_steps: bool,
    /// Seed used to *build* random topology families (never for the check
    /// itself — every draw is enumerated, not sampled).
    pub topology_seed: u64,
}

impl CheckSpec {
    /// A progress check of `algorithm` on `family` at `size` with the
    /// default budget.
    #[must_use]
    pub fn new(family: TopologyFamily, size: usize, algorithm: AlgorithmKind) -> Self {
        CheckSpec {
            family,
            size,
            algorithm,
            target: CheckTargetSpec::Progress,
            max_states: 6_000_000,
            threads: 0,
            symmetry: None,
            expected_steps: false,
            topology_seed: 0,
        }
    }

    fn effective_symmetry(&self) -> bool {
        self.symmetry
            .unwrap_or_else(|| self.algorithm.is_relabelling_invariant())
    }
}

/// The result of [`run_check`]: one certificate per checked objective,
/// plus the extracted counterexample when one exists.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The checked cell key, `"<family>/n<size>/<ALGORITHM>"`.
    pub cell: String,
    /// One certificate per checked target, in a deterministic order.
    pub certificates: Vec<Certificate>,
    /// The extracted worst-case schedule defeating the first violated
    /// target, if any.
    pub counterexample: Option<CounterexampleSchedule>,
    /// Graphviz rendering of the counterexample lasso.
    pub counterexample_dot: Option<String>,
}

impl CheckReport {
    /// The worst verdict across all certificates (`Violated` dominates,
    /// then `Inconclusive`, then `Certified`).
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        let mut verdict = Verdict::Certified;
        for certificate in &self.certificates {
            match certificate.verdict() {
                Verdict::Violated => return Verdict::Violated,
                Verdict::Inconclusive => verdict = Verdict::Inconclusive,
                Verdict::Certified => {}
            }
        }
        verdict
    }

    /// Renders every certificate as one stable text block (the `gdp check`
    /// stdout format: byte-identical across runs and thread counts).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cell:              {}", self.cell);
        for certificate in &self.certificates {
            out.push_str(&certificate.render());
        }
        let _ = writeln!(out, "overall verdict:   {}", self.verdict().name());
        out
    }
}

/// Resolves and runs an exact check.
///
/// # Errors
///
/// Returns a message when the topology parameters are invalid or a
/// `philosopher:<i>` target is out of range.
pub fn run_check(spec: &CheckSpec) -> Result<CheckReport, String> {
    let topology = spec
        .family
        .build(spec.size, spec.topology_seed)
        .map_err(|e| {
            format!(
                "cannot build {} at n={}: {e}",
                spec.family.name(),
                spec.size
            )
        })?;
    let cell = format!(
        "{}/n{}/{}",
        spec.family.name(),
        spec.size,
        spec.algorithm.name()
    );
    let targets: Vec<CheckTarget> = match spec.target {
        CheckTargetSpec::Progress => vec![CheckTarget::Progress],
        CheckTargetSpec::Philosopher(index) => {
            if index as usize >= topology.num_philosophers() {
                return Err(format!(
                    "philosopher {index} is out of range for {} (n={})",
                    cell,
                    topology.num_philosophers()
                ));
            }
            vec![CheckTarget::PhilosopherEats(PhilosopherId::new(index))]
        }
        CheckTargetSpec::Lockout => lockout_representatives(&topology, spec.effective_symmetry())
            .into_iter()
            .map(CheckTarget::PhilosopherEats)
            .collect(),
    };

    let build_options = BuildOptions::default()
        .with_max_states(spec.max_states)
        .with_symmetry(spec.effective_symmetry())
        .with_threads(spec.threads);
    let solve_options = SolveOptions {
        expected_steps: spec.expected_steps,
        ..SolveOptions::default()
    };

    let program = spec.algorithm.program();
    let mut certificates = Vec::with_capacity(targets.len());
    let mut counterexample = None;
    let mut counterexample_dot_out = None;
    for target in targets {
        let mdp = build_mdp(&topology, &program, target, &build_options);
        let solution = solve(&mdp, &solve_options);
        let schedule = if counterexample.is_none() && !solution.holds_with_probability_one() {
            extract_counterexample(
                &topology,
                &program,
                &build_options.sim,
                &mdp,
                &solution,
                &[0, 1, 2, 3, 4, 5, 6, 7],
                counterexample_length(&topology),
            )
        } else {
            None
        };
        certificates.push(Certificate::new(
            &topology,
            spec.algorithm.name(),
            target,
            &build_options.sim,
            &mdp,
            &solution,
            schedule.as_ref(),
        ));
        if let Some(schedule) = schedule {
            counterexample_dot_out = Some(counterexample_dot(
                &topology,
                &program,
                &build_options.sim,
                &schedule,
            ));
            counterexample = Some(schedule);
        }
    }
    Ok(CheckReport {
        cell,
        certificates,
        counterexample,
        counterexample_dot: counterexample_dot_out,
    })
}

/// A long-enough starvation demonstration: every philosopher gets many
/// scheduling opportunities.
fn counterexample_length(topology: &Topology) -> usize {
    (topology.num_philosophers() * 120).max(360)
}

/// One philosopher per symmetry orbit (all of them when symmetry is off):
/// individual liveness is isomorphic across an orbit, so checking a
/// representative suffices.
fn lockout_representatives(topology: &Topology, use_symmetry: bool) -> Vec<PhilosopherId> {
    let n = topology.num_philosophers();
    if !use_symmetry {
        return topology.philosopher_ids().collect();
    }
    let autos = symmetry::automorphisms(topology, 64);
    let mut orbit = vec![u32::MAX; n];
    for p in 0..n {
        if orbit[p] != u32::MAX {
            continue;
        }
        for auto in &autos {
            let image = auto.phil_map[p].index();
            if orbit[image] == u32::MAX {
                orbit[image] = p as u32;
            }
        }
    }
    (0..n)
        .filter(|&p| orbit[p] == p as u32)
        .map(|p| PhilosopherId::new(p as u32))
        .collect()
}

/// The exact verdict attached to one sweep cell (the `--check` columns of
/// `gdp sweep`): a worst-case progress check with the given state budget.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactCellVerdict {
    /// `certified`, `violated` or `inconclusive`.
    pub verdict: String,
    /// Worst-case (fair-adversary) progress probability; exact when the
    /// verdict is not `inconclusive`.
    pub progress_probability: f64,
    /// Canonical states explored.
    pub states: usize,
}

/// Runs the trimmed-down exact progress check a sweep attaches to a cell.
///
/// # Errors
///
/// Returns a message when the topology cannot be built.
pub fn exact_cell_verdict(
    family: TopologyFamily,
    size: usize,
    algorithm: AlgorithmKind,
    topology_seed: u64,
    max_states: usize,
    threads: usize,
) -> Result<ExactCellVerdict, String> {
    let spec = CheckSpec {
        max_states,
        threads,
        topology_seed,
        ..CheckSpec::new(family, size, algorithm)
    };
    let report = run_check(&spec)?;
    let certificate = &report.certificates[0];
    Ok(ExactCellVerdict {
        verdict: report.verdict().name().to_string(),
        progress_probability: certificate.probability,
        states: certificate.states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gdp1_ring4_progress_check_certifies_exactly_one() {
        let spec = CheckSpec::new(TopologyFamily::Ring, 4, AlgorithmKind::Gdp1);
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Certified);
        assert_eq!(report.certificates[0].probability, 1.0);
        assert!(report.counterexample.is_none());
        assert!(report.render().contains("overall verdict:   certified"));
    }

    #[test]
    fn naive_ring3_progress_check_finds_the_deadlock_with_a_schedule() {
        let spec = CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Naive);
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Violated);
        let certificate = &report.certificates[0];
        assert!(certificate.deadlock_states > 0);
        assert_eq!(certificate.probability, 0.0);
        let schedule = report.counterexample.as_ref().expect("deadlock schedule");
        assert!(!schedule.steps.is_empty());
        assert!(report
            .counterexample_dot
            .as_ref()
            .unwrap()
            .starts_with("digraph"));
    }

    #[test]
    fn lr1_ring3_lockout_check_finds_sure_starvation_per_orbit() {
        let spec = CheckSpec {
            target: CheckTargetSpec::Lockout,
            ..CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Lr1)
        };
        let report = run_check(&spec).unwrap();
        // All three philosophers are one rotation orbit: one certificate.
        assert_eq!(report.certificates.len(), 1);
        assert_eq!(report.verdict(), Verdict::Violated);
        assert_eq!(report.certificates[0].probability, 0.0);
        assert!(report.counterexample.is_some());
    }

    #[test]
    fn check_reports_are_reproducible_across_thread_counts() {
        let base = CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Gdp1);
        let serial = run_check(&CheckSpec {
            threads: 1,
            ..base.clone()
        })
        .unwrap();
        let parallel = run_check(&CheckSpec { threads: 4, ..base }).unwrap();
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn exact_cell_verdicts_report_budget_exhaustion_as_inconclusive() {
        let tiny =
            exact_cell_verdict(TopologyFamily::Ring, 5, AlgorithmKind::Gdp1, 0, 100, 1).unwrap();
        assert_eq!(tiny.verdict, "inconclusive");
        assert_eq!(tiny.states, 100);
        let real =
            exact_cell_verdict(TopologyFamily::Ring, 3, AlgorithmKind::Lr1, 0, 100_000, 1).unwrap();
        assert_eq!(real.verdict, "certified");
        assert_eq!(real.progress_probability, 1.0);
    }

    #[test]
    fn target_specs_parse() {
        assert_eq!(
            "progress".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Progress
        );
        assert_eq!(
            "lockout".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Lockout
        );
        assert_eq!(
            "philosopher:2".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Philosopher(2)
        );
        assert!("philosopher:x".parse::<CheckTargetSpec>().is_err());
        assert!("nope".parse::<CheckTargetSpec>().is_err());
    }
}
