//! Exact checking wired into the scenario-spec machinery.
//!
//! [`CheckSpec`] names a cell the way a sweep does — *topology family ×
//! size × algorithm* — plus an objective, and [`run_check`] resolves it
//! through `gdp-mcheck`: build the exact MDP, solve it, extract a
//! counterexample schedule when the property fails, and return
//! byte-reproducible [`Certificate`]s.  This is the engine behind
//! `gdp check`, and [`exact_cell_verdict`] is the trimmed-down variant the
//! sweep runner calls to put exact verdicts *next to* the Monte-Carlo
//! estimates in sweep reports.
//!
//! This module is deliberately non-generic: `gdp-mcheck`'s builders are
//! monomorphised here (over `gdp_algorithms::AnyProgram`) so every caller —
//! including the unoptimised CLI binary in dev builds — runs the optimised
//! instantiation.

use crate::family::TopologyFamily;
use crate::report::f64_bits;
use crate::store::{stable_digest64, CellStore, CertLookup, StoreStats};
use gdp_algorithms::AlgorithmKind;
pub use gdp_mcheck::certificate::Verdict as CheckVerdict;
use gdp_mcheck::certificate::Verdict;
use gdp_mcheck::strategy::{counterexample_dot, extract_counterexample, CounterexampleSchedule};
use gdp_mcheck::{
    build_mdp, build_restricted_mdp, solve, BuildOptions, Certificate, CheckTarget,
    ScheduleRestriction, SolveOptions,
};
use gdp_topology::{symmetry, PhilosopherId, Topology};
use std::fmt::Write as _;

/// The adversary class a check quantifies over, as named on the command
/// line (`gdp check --adversary`).
///
/// The default is the paper's: **all** fair schedulers, which contains
/// every *fair* catalog family.  The restricted classes relate to the
/// `gdp-adversary` catalog as follows (tabulated in
/// `docs/ADVERSARIES.md`):
///
/// * `crash:<f>` contains the catalog's `crash:<f>` scheduler exactly
///   (same victim budget, every crash timing/placement), so a
///   `certified` verdict covers every Monte-Carlo crash run;
/// * `kbounded:<K>` contains every scheduler whose waits stay below `K`.
///   Mind the parameter mapping: the catalog's dwell scheduler
///   `kbounded:<k>` produces gaps of `k·(n−1)` steps, so it lies in the
///   exact class `kbounded:<k·(n−1)>` — **not** in `kbounded:<k>` for
///   `k ≥ 2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckAdversarySpec {
    /// All fair schedulers (`--adversary fair`, the default).
    AllFair,
    /// Only k-bounded-fair schedulers (`--adversary kbounded:<k>`).
    KBounded {
        /// The wait bound that triggers forcing.
        k: u32,
    },
    /// Fair schedulers plus up to `crashes` crash-stop faults
    /// (`--adversary crash:<f>`).
    CrashStop {
        /// Maximum number of crash actions.
        crashes: u32,
    },
}

impl CheckAdversarySpec {
    /// The exact class matching a sweep's concrete scheduler: `crash:<f>`
    /// maps to the crash-stop class with the same budget (the sweep's
    /// faulty scheduler is a member, so the verdict speaks about the
    /// row); every *fair* family — dwell round-robin included — is a
    /// member of the all-fair default.
    #[must_use]
    pub fn for_sweep_adversary(adversary: gdp_adversary::AdversaryKind) -> Self {
        match adversary {
            gdp_adversary::AdversaryKind::CrashStop { crashes } => {
                CheckAdversarySpec::CrashStop { crashes }
            }
            _ => CheckAdversarySpec::AllFair,
        }
    }

    /// The canonical command-line spelling (`fair`, `kbounded:<k>`,
    /// `crash:<f>`) — stable, because it participates in check-store
    /// fingerprints ([`CheckSpec::store_context`]).
    #[must_use]
    pub fn name(self) -> String {
        match self {
            CheckAdversarySpec::AllFair => "fair".to_string(),
            CheckAdversarySpec::KBounded { k } => format!("kbounded:{k}"),
            CheckAdversarySpec::CrashStop { crashes } => format!("crash:{crashes}"),
        }
    }

    /// The product-MDP restriction, or `None` for the unrestricted model.
    #[must_use]
    pub fn restriction(self) -> Option<ScheduleRestriction> {
        match self {
            CheckAdversarySpec::AllFair => None,
            CheckAdversarySpec::KBounded { k } => Some(ScheduleRestriction::KBounded { k }),
            CheckAdversarySpec::CrashStop { crashes } => Some(ScheduleRestriction::CrashStop {
                max_crashes: crashes,
            }),
        }
    }
}

impl std::str::FromStr for CheckAdversarySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "fair" | "all-fair" | "all" => return Ok(CheckAdversarySpec::AllFair),
            _ => {}
        }
        if let Some(k) = lower
            .strip_prefix("kbounded:")
            .or_else(|| lower.strip_prefix("kbounded-rr:"))
        {
            return match k.parse() {
                Ok(k) if k >= 1 => Ok(CheckAdversarySpec::KBounded { k }),
                _ => Err(format!("invalid k in adversary class {s:?}")),
            };
        }
        if let Some(f) = lower
            .strip_prefix("crash:")
            .or_else(|| lower.strip_prefix("crash-stop:"))
        {
            return f
                .parse()
                .map(|crashes| CheckAdversarySpec::CrashStop { crashes })
                .map_err(|_| format!("invalid crash count in adversary class {s:?}"));
        }
        Err(format!(
            "invalid adversary class {s:?}: expected fair, kbounded:<k> or crash:<f>"
        ))
    }
}

/// The objective of a check, as named on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckTargetSpec {
    /// Worst-case progress: some philosopher eats (`--target progress`).
    Progress,
    /// Worst-case individual liveness of one philosopher
    /// (`--target philosopher:<i>`).
    Philosopher(u32),
    /// Lockout-freedom: individual liveness of every philosopher, checked
    /// once per symmetry orbit (`--target lockout`).
    Lockout,
}

impl CheckTargetSpec {
    /// The canonical command-line spelling (`progress`, `lockout`,
    /// `philosopher:<i>`) — stable, because it participates in check-store
    /// fingerprints ([`CheckSpec::store_context`]).
    #[must_use]
    pub fn name(self) -> String {
        match self {
            CheckTargetSpec::Progress => "progress".to_string(),
            CheckTargetSpec::Lockout => "lockout".to_string(),
            CheckTargetSpec::Philosopher(index) => format!("philosopher:{index}"),
        }
    }
}

impl std::str::FromStr for CheckTargetSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "progress" => Ok(CheckTargetSpec::Progress),
            "lockout" => Ok(CheckTargetSpec::Lockout),
            other => match other.strip_prefix("philosopher:") {
                Some(index) => index
                    .parse()
                    .map(CheckTargetSpec::Philosopher)
                    .map_err(|_| format!("invalid philosopher index in target {s:?}")),
                None => Err(format!(
                    "invalid target {s:?}: expected progress, lockout or philosopher:<i>"
                )),
            },
        }
    }
}

/// A fully specified exact check: one sweep-style cell plus an objective.
#[derive(Clone, Debug)]
pub struct CheckSpec {
    /// Topology family (same catalog as `gdp sweep`).
    pub family: TopologyFamily,
    /// Family scale parameter.
    pub size: usize,
    /// The algorithm to check.
    pub algorithm: AlgorithmKind,
    /// The objective.
    pub target: CheckTargetSpec,
    /// State budget before the model is truncated (inconclusive verdict).
    pub max_states: usize,
    /// Worker threads for frontier expansion (`0` = all cores); the
    /// certificate is byte-identical for every value.
    pub threads: usize,
    /// Symmetry quotient: `None` resolves automatically from
    /// [`AlgorithmKind::is_relabelling_invariant`].
    pub symmetry: Option<bool>,
    /// Also compute the exact expected steps-to-first-meal under the
    /// uniform random scheduler.
    pub expected_steps: bool,
    /// Seed used to *build* random topology families (never for the check
    /// itself — every draw is enumerated, not sampled).
    pub topology_seed: u64,
    /// The adversary class to quantify over.  Restricted classes build the
    /// product MDP of `gdp-mcheck::restricted` (serial, quotient-free) and
    /// skip counterexample extraction — the replayer speaks engine states,
    /// not product states.
    pub adversary: CheckAdversarySpec,
}

impl CheckSpec {
    /// A progress check of `algorithm` on `family` at `size` with the
    /// default budget.
    #[must_use]
    pub fn new(family: TopologyFamily, size: usize, algorithm: AlgorithmKind) -> Self {
        CheckSpec {
            family,
            size,
            algorithm,
            target: CheckTargetSpec::Progress,
            max_states: 6_000_000,
            threads: 0,
            symmetry: None,
            expected_steps: false,
            topology_seed: 0,
            adversary: CheckAdversarySpec::AllFair,
        }
    }

    fn effective_symmetry(&self) -> bool {
        self.symmetry
            .unwrap_or_else(|| self.algorithm.is_relabelling_invariant())
    }

    /// The checked cell key, `"<family>/n<size>/<ALGORITHM>"` — the same
    /// shape sweep cells use.
    #[must_use]
    pub fn cell_key(&self) -> String {
        format!(
            "{}/n{}/{}",
            self.family.name(),
            self.size,
            self.algorithm.name()
        )
    }

    /// The certificate-record **store context**: every option that changes
    /// the certificate bytes, rendered as one stable line.  Like
    /// `ScenarioSpec::store_context` it deliberately excludes what does
    /// *not* change the bytes — `threads` (certificates are byte-identical
    /// for every thread count, test-enforced) — and what lives in the
    /// record key instead (family, size, algorithm, topology seed).
    /// Symmetry is recorded *resolved* (`true`/`false`), so `auto` and an
    /// explicit matching flag share cache entries.
    ///
    /// The leading `gdp-check v1` token versions this vocabulary itself:
    /// records fingerprinted under an older vocabulary simply miss, they
    /// are never misread.
    #[must_use]
    pub fn store_context(&self) -> String {
        format!(
            "gdp-check v1 | target={} | adversary={} | max_states={} | symmetry={} | \
             expected_steps={}",
            self.target.name(),
            self.adversary.name(),
            self.max_states,
            self.effective_symmetry(),
            self.expected_steps,
        )
    }

    /// The FNV-1a fingerprint certificate records of this check spec are
    /// addressed under.
    #[must_use]
    pub fn store_fingerprint(&self) -> u64 {
        stable_digest64(self.store_context().as_bytes())
    }

    /// The certificate-record key: the cell key plus the topology seed
    /// (random families build different topologies per seed, and the seed
    /// is a cell axis in sweeps, so it belongs in the key, not the
    /// context).
    #[must_use]
    pub fn cert_key(&self) -> String {
        format!("{}@s{}", self.cell_key(), self.topology_seed)
    }
}

/// The result of [`run_check`]: one certificate per checked objective,
/// plus the extracted counterexample when one exists.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The checked cell key, `"<family>/n<size>/<ALGORITHM>"`.
    pub cell: String,
    /// One certificate per checked target, in a deterministic order.
    pub certificates: Vec<Certificate>,
    /// The extracted worst-case schedule defeating the first violated
    /// target, if any.
    pub counterexample: Option<CounterexampleSchedule>,
    /// Graphviz rendering of the counterexample lasso.
    pub counterexample_dot: Option<String>,
}

impl CheckReport {
    /// The worst verdict across all certificates (`Violated` dominates,
    /// then `Inconclusive`, then `Certified`).
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        overall_verdict(&self.certificates)
    }

    /// Renders every certificate as one stable text block (the `gdp check`
    /// stdout format: byte-identical across runs and thread counts).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cell:              {}", self.cell);
        for certificate in &self.certificates {
            out.push_str(&certificate.render());
        }
        let _ = writeln!(out, "overall verdict:   {}", self.verdict().name());
        out
    }
}

/// Resolves and runs an exact check.
///
/// # Errors
///
/// Returns a message when the topology parameters are invalid or a
/// `philosopher:<i>` target is out of range.
pub fn run_check(spec: &CheckSpec) -> Result<CheckReport, String> {
    let topology = spec
        .family
        .build(spec.size, spec.topology_seed)
        .map_err(|e| {
            format!(
                "cannot build {} at n={}: {e}",
                spec.family.name(),
                spec.size
            )
        })?;
    let cell = spec.cell_key();
    let targets: Vec<CheckTarget> = match spec.target {
        CheckTargetSpec::Progress => vec![CheckTarget::Progress],
        CheckTargetSpec::Philosopher(index) => {
            if index as usize >= topology.num_philosophers() {
                return Err(format!(
                    "philosopher {index} is out of range for {} (n={})",
                    cell,
                    topology.num_philosophers()
                ));
            }
            vec![CheckTarget::PhilosopherEats(PhilosopherId::new(index))]
        }
        CheckTargetSpec::Lockout => lockout_representatives(&topology, spec.effective_symmetry())
            .into_iter()
            .map(CheckTarget::PhilosopherEats)
            .collect(),
    };

    let build_options = BuildOptions::default()
        .with_max_states(spec.max_states)
        .with_symmetry(spec.effective_symmetry())
        .with_threads(spec.threads);
    let solve_options = SolveOptions {
        // Expected-steps iteration averages over schedule choices, which
        // only makes sense in the unrestricted model (restricted products
        // add crash choices / forced rows).
        expected_steps: spec.expected_steps && spec.adversary == CheckAdversarySpec::AllFair,
        ..SolveOptions::default()
    };

    let program = spec.algorithm.program();
    let restriction = spec.adversary.restriction();
    let mut certificates = Vec::with_capacity(targets.len());
    let mut counterexample = None;
    let mut counterexample_dot_out = None;
    for target in targets {
        let mdp = match restriction {
            None => build_mdp(&topology, &program, target, &build_options),
            Some(restriction) => {
                build_restricted_mdp(&topology, &program, target, restriction, &build_options)
            }
        };
        let solution = solve(&mdp, &solve_options);
        // Counterexample replay speaks plain engine states; restricted
        // product states carry scheduler bookkeeping the replayer cannot
        // reconstruct, so extraction is limited to the unrestricted model.
        let schedule = if restriction.is_none()
            && counterexample.is_none()
            && !solution.holds_with_probability_one()
        {
            extract_counterexample(
                &topology,
                &program,
                &build_options.sim,
                &mdp,
                &solution,
                &[0, 1, 2, 3, 4, 5, 6, 7],
                counterexample_length(&topology),
            )
        } else {
            None
        };
        let mut certificate = Certificate::new(
            &topology,
            spec.algorithm.name(),
            target,
            &build_options.sim,
            &mdp,
            &solution,
            schedule.as_ref(),
        );
        if let Some(restriction) = restriction {
            certificate = certificate.with_adversary_class(restriction.describe());
        }
        certificates.push(certificate);
        if let Some(schedule) = schedule {
            counterexample_dot_out = Some(counterexample_dot(
                &topology,
                &program,
                &build_options.sim,
                &schedule,
            ));
            counterexample = Some(schedule);
        }
    }
    Ok(CheckReport {
        cell,
        certificates,
        counterexample,
        counterexample_dot: counterexample_dot_out,
    })
}

/// The worst verdict across a certificate list (`Violated` dominates, then
/// `Inconclusive`, then `Certified`) — shared by [`CheckReport::verdict`]
/// and the certificate-record codec, so a stored verdict column can never
/// be derived differently than the live one.
fn overall_verdict(certificates: &[Certificate]) -> Verdict {
    let mut verdict = Verdict::Certified;
    for certificate in certificates {
        match certificate.verdict() {
            Verdict::Violated => return Verdict::Violated,
            Verdict::Inconclusive => verdict = Verdict::Inconclusive,
            Verdict::Certified => {}
        }
    }
    verdict
}

/// A decoded certificate record: the cached result of one [`run_check`],
/// plus the derived columns (`verdict`, `progress_probability`, `states`)
/// a sweep row reads without touching the certificate list.  The decoder
/// cross-checks the columns against the certificates they were derived
/// from, so a record whose verdict was tampered with — even with a
/// recomputed checksum — is rejected, never trusted.
#[derive(Clone, Debug)]
pub struct StoredCheck {
    /// The record key, `"<cell key>@s<topology seed>"`.
    pub key: String,
    /// The checked cell key (what [`CheckReport::cell`] holds).
    pub cell: String,
    /// Overall verdict name, derived from the certificates.
    pub verdict: String,
    /// `certificates[0].probability` — the sweep's
    /// `exact_progress_prob` column.
    pub progress_probability: f64,
    /// `certificates[0].states` — the sweep's `exact_states` column.
    pub states: usize,
    /// The full certificates, byte-identical to recomputation.
    pub certificates: Vec<Certificate>,
}

/// Serializes one check's certificates as a certificate-record payload:
/// six derived header fields, then `certificates` fixed-shape blocks of
/// [`Certificate::ENCODED_LINES`] lines each.  The derived columns are
/// computed here, from the certificates themselves — the caller cannot
/// inject a verdict that disagrees with the bytes below it.
pub(crate) fn encode_check_payload(key: &str, cell: &str, certificates: &[Certificate]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "key {key}");
    let _ = writeln!(out, "cell {cell}");
    let _ = writeln!(out, "verdict {}", overall_verdict(certificates).name());
    let _ = writeln!(
        out,
        "progress_probability {}",
        f64_bits(certificates.first().map_or(0.0, |c| c.probability))
    );
    let _ = writeln!(
        out,
        "states {}",
        certificates.first().map_or(0, |c| c.states)
    );
    let _ = writeln!(out, "certificates {}", certificates.len());
    for certificate in certificates {
        out.push_str(&certificate.encode());
    }
    out
}

/// Parses a certificate-record payload, strictly: fixed field order, a
/// certificate count matching the trailing blocks exactly, at least one
/// certificate, and derived columns that agree with the decoded
/// certificates.
pub(crate) fn decode_check_payload(payload: &str) -> Result<StoredCheck, String> {
    let lines: Vec<&str> = payload.lines().collect();
    let mut cursor = 0usize;
    let mut field = |name: &str| -> Result<String, String> {
        let line = lines
            .get(cursor)
            .ok_or_else(|| format!("payload truncated before field {name:?}"))?;
        cursor += 1;
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed payload line {line:?}"))?;
        if key != name {
            return Err(format!("expected field {name:?}, found {key:?}"));
        }
        Ok(value.to_string())
    };
    let key = field("key")?;
    let cell = field("cell")?;
    let verdict = field("verdict")?;
    let probability_hex = field("progress_probability")?;
    if probability_hex.len() != 16 {
        return Err(format!("invalid f64 bits {probability_hex:?}"));
    }
    let progress_probability = f64::from_bits(
        u64::from_str_radix(&probability_hex, 16)
            .map_err(|_| format!("invalid f64 bits {probability_hex:?}"))?,
    );
    let states: usize = field("states")?
        .parse()
        .map_err(|_| "invalid states count".to_string())?;
    let count: usize = field("certificates")?
        .parse()
        .map_err(|_| "invalid certificate count".to_string())?;
    if count == 0 {
        return Err("certificate record holds no certificates".to_string());
    }
    let body = &lines[cursor..];
    if body.len() != count * Certificate::ENCODED_LINES {
        return Err(format!(
            "expected {} certificate lines, found {}",
            count * Certificate::ENCODED_LINES,
            body.len()
        ));
    }
    let certificates: Vec<Certificate> = body
        .chunks(Certificate::ENCODED_LINES)
        .map(|chunk| Certificate::decode(&chunk.join("\n")))
        .collect::<Result<_, _>>()?;
    // The derived columns must agree with the certificates they claim to
    // summarize — a tampered verdict can never outvote its own evidence.
    if verdict != overall_verdict(&certificates).name() {
        return Err(format!(
            "stored verdict {verdict:?} disagrees with the certificates"
        ));
    }
    if progress_probability.to_bits() != certificates[0].probability.to_bits() {
        return Err("stored progress probability disagrees with the certificates".to_string());
    }
    if states != certificates[0].states {
        return Err("stored state count disagrees with the certificates".to_string());
    }
    Ok(StoredCheck {
        key,
        cell,
        verdict,
        progress_probability,
        states,
        certificates,
    })
}

/// Error produced by [`run_check_cached`].
#[derive(Debug)]
pub enum CheckStoreError {
    /// The underlying [`run_check`] failed (invalid topology parameters or
    /// an out-of-range target).
    Check(String),
    /// The store could not be read from or written to.
    Store {
        /// The certificate-record key involved.
        key: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The record on disk carries a store format version newer than this
    /// build; it is left untouched and the check refuses to shadow it.
    Unsupported {
        /// The certificate-record key involved.
        key: String,
        /// The record's declared format version.
        version: u32,
    },
}

impl std::fmt::Display for CheckStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckStoreError::Check(message) => write!(f, "{message}"),
            CheckStoreError::Store { key, message } => {
                write!(f, "certificate record {key}: {message}")
            }
            CheckStoreError::Unsupported { key, version } => write!(
                f,
                "certificate record {key} has store format v{version}, newer than this build \
                 (v{}) — upgrade gdp or move the record aside",
                crate::store::STORE_VERSION
            ),
        }
    }
}

impl std::error::Error for CheckStoreError {}

/// [`run_check`] behind the store's certificate cache (`gdp check --store`
/// and the exact columns of `sweep --check --store`).
///
/// With `resume`, a verified certificate record answers the check from
/// disk: the returned report renders **bitwise identical** to a cold run
/// ([`CheckReport::render`] reads only the cell key and the certificates,
/// both cached losslessly).  Counterexample schedules and DOT lassos are
/// *not* cached — callers that need them use [`run_check`] directly.
/// Without `resume`, the check always recomputes, but still persists (the
/// cold-write half of the sweep-store convention).
///
/// Returns the report plus [`StoreStats`] with exactly one of
/// `reused`/`computed` set (and `quarantined` when a bad record was
/// evicted on the way).
///
/// # Errors
///
/// [`run_check`] errors, store I/O errors, and a loud refusal when the
/// record on disk carries a format version newer than this build.
pub fn run_check_cached(
    spec: &CheckSpec,
    store: &CellStore,
    resume: bool,
) -> Result<(CheckReport, StoreStats), CheckStoreError> {
    let fingerprint = spec.store_fingerprint();
    let key = spec.cert_key();
    let store_err = |message: String| CheckStoreError::Store {
        key: spec.cert_key(),
        message,
    };
    store
        .note_context("check", fingerprint, &spec.store_context())
        .map_err(|e| store_err(format!("writing check context note: {e}")))?;
    let mut stats = StoreStats::default();
    if resume {
        match store.lookup_certificates(fingerprint, &key) {
            CertLookup::Hit(stored) => {
                stats.reused = 1;
                let StoredCheck {
                    cell, certificates, ..
                } = *stored;
                return Ok((
                    CheckReport {
                        cell,
                        certificates,
                        counterexample: None,
                        counterexample_dot: None,
                    },
                    stats,
                ));
            }
            CertLookup::Quarantined { .. } => stats.quarantined = 1,
            CertLookup::Absent => {}
            CertLookup::Unsupported { version } => {
                return Err(CheckStoreError::Unsupported { key, version });
            }
        }
    }
    let report = run_check(spec).map_err(CheckStoreError::Check)?;
    store
        .save_certificates(fingerprint, &key, &report.cell, &report.certificates)
        .map_err(|e| store_err(format!("persisting certificates: {e}")))?;
    stats.computed = 1;
    Ok((report, stats))
}

/// A long-enough starvation demonstration: every philosopher gets many
/// scheduling opportunities.
fn counterexample_length(topology: &Topology) -> usize {
    (topology.num_philosophers() * 120).max(360)
}

/// One philosopher per symmetry orbit (all of them when symmetry is off):
/// individual liveness is isomorphic across an orbit, so checking a
/// representative suffices.
fn lockout_representatives(topology: &Topology, use_symmetry: bool) -> Vec<PhilosopherId> {
    let n = topology.num_philosophers();
    if !use_symmetry {
        return topology.philosopher_ids().collect();
    }
    let autos = symmetry::automorphisms(topology, 64);
    let mut orbit = vec![u32::MAX; n];
    for p in 0..n {
        if orbit[p] != u32::MAX {
            continue;
        }
        for auto in &autos {
            let image = auto.phil_map[p].index();
            if orbit[image] == u32::MAX {
                orbit[image] = p as u32;
            }
        }
    }
    (0..n)
        .filter(|&p| orbit[p] == p as u32)
        .map(|p| PhilosopherId::new(p as u32))
        .collect()
}

/// The exact verdict attached to one sweep cell (the `--check` columns of
/// `gdp sweep`): a worst-case progress check with the given state budget.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactCellVerdict {
    /// `certified`, `violated` or `inconclusive`.
    pub verdict: String,
    /// Worst-case (fair-adversary) progress probability; exact when the
    /// verdict is not `inconclusive`.
    pub progress_probability: f64,
    /// Canonical states explored.
    pub states: usize,
}

/// Runs the trimmed-down exact progress check a sweep attaches to a cell,
/// quantifying over `adversary` — the sweep runner passes the class
/// matching the sweep's scheduler ([`CheckAdversarySpec::for_sweep_adversary`]),
/// so the exact columns and the Monte-Carlo columns of a row never
/// contradict each other.
///
/// # Errors
///
/// Returns a message when the topology cannot be built.
pub fn exact_cell_verdict(
    family: TopologyFamily,
    size: usize,
    algorithm: AlgorithmKind,
    topology_seed: u64,
    max_states: usize,
    threads: usize,
    adversary: CheckAdversarySpec,
) -> Result<ExactCellVerdict, String> {
    let spec = CheckSpec {
        max_states,
        threads,
        topology_seed,
        adversary,
        ..CheckSpec::new(family, size, algorithm)
    };
    let report = run_check(&spec)?;
    let certificate = &report.certificates[0];
    Ok(ExactCellVerdict {
        verdict: report.verdict().name().to_string(),
        progress_probability: certificate.probability,
        states: certificate.states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gdp1_ring4_progress_check_certifies_exactly_one() {
        let spec = CheckSpec::new(TopologyFamily::Ring, 4, AlgorithmKind::Gdp1);
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Certified);
        assert_eq!(report.certificates[0].probability, 1.0);
        assert!(report.counterexample.is_none());
        assert!(report.render().contains("overall verdict:   certified"));
    }

    #[test]
    fn naive_ring3_progress_check_finds_the_deadlock_with_a_schedule() {
        let spec = CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Naive);
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Violated);
        let certificate = &report.certificates[0];
        assert!(certificate.deadlock_states > 0);
        assert_eq!(certificate.probability, 0.0);
        let schedule = report.counterexample.as_ref().expect("deadlock schedule");
        assert!(!schedule.steps.is_empty());
        assert!(report
            .counterexample_dot
            .as_ref()
            .unwrap()
            .starts_with("digraph"));
    }

    #[test]
    fn lr1_ring3_lockout_check_finds_sure_starvation_per_orbit() {
        let spec = CheckSpec {
            target: CheckTargetSpec::Lockout,
            ..CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Lr1)
        };
        let report = run_check(&spec).unwrap();
        // All three philosophers are one rotation orbit: one certificate.
        assert_eq!(report.certificates.len(), 1);
        assert_eq!(report.verdict(), Verdict::Violated);
        assert_eq!(report.certificates[0].probability, 0.0);
        assert!(report.counterexample.is_some());
    }

    #[test]
    fn check_reports_are_reproducible_across_thread_counts() {
        let base = CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Gdp1);
        let serial = run_check(&CheckSpec {
            threads: 1,
            ..base.clone()
        })
        .unwrap();
        let parallel = run_check(&CheckSpec { threads: 4, ..base }).unwrap();
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn exact_cell_verdicts_report_budget_exhaustion_as_inconclusive() {
        let tiny = exact_cell_verdict(
            TopologyFamily::Ring,
            5,
            AlgorithmKind::Gdp1,
            0,
            100,
            1,
            CheckAdversarySpec::AllFair,
        )
        .unwrap();
        assert_eq!(tiny.verdict, "inconclusive");
        assert_eq!(tiny.states, 100);
        let real = exact_cell_verdict(
            TopologyFamily::Ring,
            3,
            AlgorithmKind::Lr1,
            0,
            100_000,
            1,
            CheckAdversarySpec::AllFair,
        )
        .unwrap();
        assert_eq!(real.verdict, "certified");
        assert_eq!(real.progress_probability, 1.0);
    }

    #[test]
    fn sweep_exact_columns_match_the_sweep_adversary_class() {
        use gdp_adversary::AdversaryKind;
        // Fair families map to the all-fair default; the crash family maps
        // to the crash class with the same budget...
        assert_eq!(
            CheckAdversarySpec::for_sweep_adversary(AdversaryKind::UniformRandom),
            CheckAdversarySpec::AllFair
        );
        assert_eq!(
            CheckAdversarySpec::for_sweep_adversary(AdversaryKind::KBoundedRoundRobin { k: 4 }),
            CheckAdversarySpec::AllFair
        );
        assert_eq!(
            CheckAdversarySpec::for_sweep_adversary(AdversaryKind::CrashStop { crashes: 1 }),
            CheckAdversarySpec::CrashStop { crashes: 1 }
        );
        // ...so a crash:1 GDP1 ring-3 cell reports the crash-class verdict
        // (violated, probability 0) instead of a contradictory all-fair
        // "certified" next to faulty Monte-Carlo columns.
        let exact = exact_cell_verdict(
            TopologyFamily::Ring,
            3,
            AlgorithmKind::Gdp1,
            0,
            2_000_000,
            1,
            CheckAdversarySpec::for_sweep_adversary(AdversaryKind::CrashStop { crashes: 1 }),
        )
        .unwrap();
        assert_eq!(exact.verdict, "violated");
        assert_eq!(exact.progress_probability, 0.0);
    }

    #[test]
    fn restricted_checks_run_and_stamp_the_adversary_class() {
        // The crash-stop class defeats GDP1 progress even on the 3-ring
        // (see gdp-mcheck::restricted): violated, with the class named in
        // the certificate.
        let spec = CheckSpec {
            adversary: CheckAdversarySpec::CrashStop { crashes: 1 },
            ..CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Gdp1)
        };
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Violated);
        assert!(report.counterexample.is_none(), "no replay for products");
        let rendered = report.render();
        assert!(
            rendered.contains("adversaries:       fair schedulers with up to 1 crash-stop"),
            "{rendered}"
        );

        // The k-bounded class is a *subset* of all fair schedulers: GDP1
        // progress stays certified.
        let spec = CheckSpec {
            adversary: CheckAdversarySpec::KBounded { k: 2 },
            ..CheckSpec::new(TopologyFamily::Ring, 3, AlgorithmKind::Gdp1)
        };
        let report = run_check(&spec).unwrap();
        assert_eq!(report.verdict(), Verdict::Certified);
        assert!(report
            .render()
            .contains("adversaries:       k-bounded-fair schedulers (k=2)"));
    }

    #[test]
    fn check_adversary_specs_parse() {
        assert_eq!(
            "fair".parse::<CheckAdversarySpec>().unwrap(),
            CheckAdversarySpec::AllFair
        );
        assert_eq!(
            "kbounded:3".parse::<CheckAdversarySpec>().unwrap(),
            CheckAdversarySpec::KBounded { k: 3 }
        );
        assert_eq!(
            "crash:2".parse::<CheckAdversarySpec>().unwrap(),
            CheckAdversarySpec::CrashStop { crashes: 2 }
        );
        assert!("kbounded:0".parse::<CheckAdversarySpec>().is_err());
        assert!("uniform-random".parse::<CheckAdversarySpec>().is_err());
        assert_eq!(CheckAdversarySpec::AllFair.restriction(), None);
    }

    #[test]
    fn target_specs_parse() {
        assert_eq!(
            "progress".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Progress
        );
        assert_eq!(
            "lockout".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Lockout
        );
        assert_eq!(
            "philosopher:2".parse::<CheckTargetSpec>().unwrap(),
            CheckTargetSpec::Philosopher(2)
        );
        assert!("philosopher:x".parse::<CheckTargetSpec>().is_err());
        assert!("nope".parse::<CheckTargetSpec>().is_err());
    }

    fn temp_cert_store(tag: &str) -> (CellStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "gdp_cert_store_test_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (CellStore::open_bare(&dir).unwrap(), dir)
    }

    #[test]
    fn the_check_payload_codec_round_trips_and_cross_checks_its_columns() {
        let spec = CheckSpec::new(TopologyFamily::Ring, 4, AlgorithmKind::Gdp1);
        let report = run_check(&spec).unwrap();
        let payload =
            encode_check_payload(&spec.cert_key(), &spec.cell_key(), &report.certificates);
        let stored = decode_check_payload(&payload).unwrap();
        assert_eq!(stored.key, spec.cert_key());
        assert_eq!(stored.cell, spec.cell_key());
        assert_eq!(stored.verdict, "certified");
        assert_eq!(stored.certificates, report.certificates);
        // Tampering with a derived column is caught even when the
        // certificate blocks themselves still decode.
        let tampered = payload.replacen("verdict certified", "verdict violated", 1);
        assert!(decode_check_payload(&tampered).is_err());
        let truncated = payload
            .lines()
            .take(6 + Certificate::ENCODED_LINES - 1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(decode_check_payload(&truncated).is_err());
    }

    #[test]
    fn cached_checks_reuse_certificates_and_render_identically() {
        let (store, dir) = temp_cert_store("reuse");
        let spec = CheckSpec::new(TopologyFamily::Ring, 4, AlgorithmKind::Gdp1);
        let (cold, stats) = run_check_cached(&spec, &store, true).unwrap();
        assert_eq!((stats.reused, stats.computed), (0, 1));
        let (warm, stats) = run_check_cached(&spec, &store, true).unwrap();
        assert_eq!((stats.reused, stats.computed), (1, 0));
        assert_eq!(warm.render(), cold.render(), "warm render is bitwise cold");
        // Without resume the check recomputes, but converges on the same
        // stored bytes.
        let (_, stats) = run_check_cached(&spec, &store, false).unwrap();
        assert_eq!((stats.reused, stats.computed), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_certificate_cache_is_keyed_by_the_full_check_context() {
        let (store, dir) = temp_cert_store("keying");
        let spec = CheckSpec::new(TopologyFamily::Ring, 4, AlgorithmKind::Gdp1);
        run_check_cached(&spec, &store, true).unwrap();
        // A different adversary class is a different check: no false hit.
        let restricted = CheckSpec {
            adversary: CheckAdversarySpec::KBounded { k: 1 },
            ..spec.clone()
        };
        let (_, stats) = run_check_cached(&restricted, &store, true).unwrap();
        assert_eq!((stats.reused, stats.computed), (0, 1));
        // So is a different topology seed (random families redraw edges).
        let reseeded = CheckSpec {
            topology_seed: 1,
            ..spec.clone()
        };
        let (_, stats) = run_check_cached(&reseeded, &store, true).unwrap();
        assert_eq!((stats.reused, stats.computed), (0, 1));
        // And each variant now answers warm from its own record.
        for variant in [&spec, &restricted, &reseeded] {
            let (_, stats) = run_check_cached(variant, &store, true).unwrap();
            assert_eq!(
                (stats.reused, stats.computed),
                (1, 0),
                "{}",
                variant.cert_key()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_certificate_records_are_quarantined_and_recomputed() {
        let (store, dir) = temp_cert_store("corrupt");
        let spec = CheckSpec::new(TopologyFamily::Ring, 4, AlgorithmKind::Gdp1);
        let (cold, _) = run_check_cached(&spec, &store, true).unwrap();
        let path = store.cert_record_path(spec.store_fingerprint(), &spec.cert_key());
        let mut raw = std::fs::read(&path).unwrap();
        let target = raw.len() - 20;
        raw[target] ^= 0x04;
        std::fs::write(&path, raw).unwrap();
        let (recomputed, stats) = run_check_cached(&spec, &store, true).unwrap();
        assert_eq!((stats.reused, stats.computed, stats.quarantined), (0, 1, 1));
        assert_eq!(recomputed.render(), cold.render());
        assert!(
            std::fs::read_dir(dir.join("quarantine")).unwrap().count() > 0,
            "the bad record is preserved for forensics"
        );
        // The re-saved record answers the next warm check.
        let (_, stats) = run_check_cached(&spec, &store, true).unwrap();
        assert_eq!((stats.reused, stats.computed), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
