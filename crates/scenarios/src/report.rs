//! Report serialization: hand-written JSON and CSV (this workspace is fully
//! offline and carries no serialization dependency; see `gdp-bench::perf`
//! for the same approach applied to `BENCH_results.json`).

use crate::runner::CellResult;
use crate::spec::ScenarioSpec;
use std::fmt::Write as _;
use std::path::Path;

/// The collected results of one sweep, plus the spec context needed to
/// reproduce it.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// Sweep name (from the spec).
    pub name: String,
    /// The spec's one-line grid summary.
    pub spec_summary: String,
    /// The adversary name.
    pub adversary: String,
    /// The seed policy string.
    pub seed_policy: String,
    /// Trials per cell.
    pub trials: u64,
    /// Step budget per trial.
    pub max_steps: u64,
    /// Per-cell results, in expansion order.
    pub cells: Vec<CellResult>,
}

impl SweepReport {
    /// Whether any cell observed a hard violation (true deadlock or safety
    /// breach) in any trial — the signal behind `gdp sweep`'s nonzero exit.
    #[must_use]
    pub fn violation_detected(&self) -> bool {
        self.cells.iter().any(CellResult::violation_detected)
    }
}

/// Formats an `f64` for the JSON/CSV artifacts: finite values with six
/// decimal places (enough to round-trip every rate and mean the estimators
/// produce from small-integer ratios), `null`/empty-safe otherwise.
fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

/// Serializes a string as a JSON string literal.  Rust's `{:?}` is *almost*
/// JSON but escapes control characters Rust-style (`\u{1}`) instead of
/// JSON-style (`\u0001`), so user-supplied text (e.g. the sweep name) is
/// escaped by hand.
fn json_str(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The CSV header row written by [`SweepReport::to_csv`].
#[must_use]
pub fn csv_header() -> &'static str {
    "cell,family,size,philosophers,forks,algorithm,adversary,trials,max_steps,seed,\
     deadlock_rate,lockout_rate,mean_hunger,first_meal_p50,first_meal_p90,first_meal_p99,\
     min_meals_mean,fairness_mean,\
     stuck_trials,unsafe_trials,exact_verdict,exact_progress_prob,exact_states,steps_per_sec"
}

impl SweepReport {
    /// Bundles `results` with the reproduction context of `spec`.
    #[must_use]
    pub fn new(spec: &ScenarioSpec, cells: Vec<CellResult>) -> Self {
        SweepReport {
            name: spec.name.clone(),
            spec_summary: spec.summary(),
            adversary: spec.adversary.name(),
            seed_policy: spec.seed_policy.name(),
            trials: spec.trials,
            max_steps: spec.max_steps,
            cells,
        }
    }

    /// Renders the report as a JSON document.
    ///
    /// With timing off (the default) the output is a pure function of the
    /// spec, so two runs — at any thread counts — produce identical bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"sweep\": {},", json_str(&self.name));
        let _ = writeln!(out, "  \"spec\": {},", json_str(&self.spec_summary));
        let _ = writeln!(out, "  \"adversary\": {},", json_str(&self.adversary));
        let _ = writeln!(out, "  \"seed_policy\": {},", json_str(&self.seed_policy));
        let _ = writeln!(out, "  \"trials\": {},", self.trials);
        let _ = writeln!(out, "  \"max_steps\": {},", self.max_steps);
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}{}",
                cell_json(c),
                if i + 1 < self.cells.len() { "," } else { "" },
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the report as CSV with the [`csv_header`] columns, one row
    /// per cell.  `steps_per_sec` is empty when timing was not recorded.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(csv_header());
        out.push('\n');
        for c in &self.cells {
            let (exact_verdict, exact_prob, exact_states) = match &c.exact {
                Some(exact) => (
                    exact.verdict.clone(),
                    num(exact.progress_probability),
                    exact.states.to_string(),
                ),
                None => (String::new(), String::new(), String::new()),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                c.cell,
                c.family,
                c.size,
                c.philosophers,
                c.forks,
                c.algorithm,
                c.adversary,
                c.trials,
                c.max_steps,
                c.seed,
                num(c.deadlock_rate),
                num(c.lockout_rate),
                num(c.mean_hunger),
                num(c.first_meal_p50),
                num(c.first_meal_p90),
                num(c.first_meal_p99),
                num(c.min_meals_mean),
                num(c.fairness_mean),
                c.stuck_trials,
                c.unsafe_trials,
                exact_verdict,
                exact_prob,
                exact_states,
                c.steps_per_sec.map(num).unwrap_or_default(),
            );
        }
        out
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes [`Self::to_csv`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Renders one cell as a single-line JSON object — the exact shape embedded
/// in [`SweepReport::to_json`]'s `cells` array, and the per-cell object
/// `gdp serve` streams over the wire (so a served sweep and a written
/// artifact agree field for field, byte for byte).
#[must_use]
pub fn cell_json(c: &CellResult) -> String {
    let steps_per_sec = match c.steps_per_sec {
        Some(sps) => num(sps),
        None => "null".to_string(),
    };
    let (exact_verdict, exact_prob, exact_states) = match &c.exact {
        Some(exact) => (
            json_str(&exact.verdict),
            num(exact.progress_probability),
            exact.states.to_string(),
        ),
        None => ("null".to_string(), "null".to_string(), "null".to_string()),
    };
    format!(
        "{{\"cell\": {}, \"family\": {}, \"size\": {}, \
         \"philosophers\": {}, \"forks\": {}, \"algorithm\": {}, \
         \"adversary\": {}, \"trials\": {}, \"max_steps\": {}, \"seed\": {}, \
         \"deadlock_rate\": {}, \"lockout_rate\": {}, \"mean_hunger\": {}, \
         \"first_meal_p50\": {}, \"first_meal_p90\": {}, \"first_meal_p99\": {}, \
         \"min_meals_mean\": {}, \"fairness_mean\": {}, \
         \"stuck_trials\": {}, \"unsafe_trials\": {}, \
         \"exact_verdict\": {}, \"exact_progress_prob\": {}, \
         \"exact_states\": {}, \"steps_per_sec\": {}}}",
        json_str(&c.cell),
        json_str(&c.family),
        c.size,
        c.philosophers,
        c.forks,
        json_str(&c.algorithm),
        json_str(&c.adversary),
        c.trials,
        c.max_steps,
        c.seed,
        num(c.deadlock_rate),
        num(c.lockout_rate),
        num(c.mean_hunger),
        num(c.first_meal_p50),
        num(c.first_meal_p90),
        num(c.first_meal_p99),
        num(c.min_meals_mean),
        num(c.fairness_mean),
        c.stuck_trials,
        c.unsafe_trials,
        exact_verdict,
        exact_prob,
        exact_states,
        steps_per_sec,
    )
}

// ---------------------------------------------------------------------------
// Cell-record payload codec (the durable half of the serialization layer).
//
// The cell store (`crate::store`) persists one completed `CellResult` per
// record.  The payload is a strict line-oriented `field value` format in a
// fixed field order; floating-point fields are stored as the **exact bit
// pattern** (`f64::to_bits`, 16 hex digits) so a resumed sweep reproduces
// the JSON/CSV artifacts byte for byte — the `%.6f` rendering above would
// round-trip the *printed* value but not the summary statistics feeding it.
// The wall-clock `steps_per_sec` field is deliberately not persisted:
// stored cells are always the reproducible, timing-free shape.
// ---------------------------------------------------------------------------

/// Renders the exact bit pattern of an `f64` as 16 hex digits (shared with
/// the certificate-record codec in `crate::check`).
pub(crate) fn f64_bits(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Serializes the deterministic fields of a [`CellResult`] as a cell-record
/// payload.
pub(crate) fn encode_cell_payload(c: &CellResult) -> String {
    let mut out = String::with_capacity(512);
    let _ = writeln!(out, "cell {}", c.cell);
    let _ = writeln!(out, "family {}", c.family);
    let _ = writeln!(out, "size {}", c.size);
    let _ = writeln!(out, "philosophers {}", c.philosophers);
    let _ = writeln!(out, "forks {}", c.forks);
    let _ = writeln!(out, "algorithm {}", c.algorithm);
    let _ = writeln!(out, "adversary {}", c.adversary);
    let _ = writeln!(out, "trials {}", c.trials);
    let _ = writeln!(out, "max_steps {}", c.max_steps);
    let _ = writeln!(out, "seed {}", c.seed);
    let _ = writeln!(out, "deadlock_rate {}", f64_bits(c.deadlock_rate));
    let _ = writeln!(out, "lockout_rate {}", f64_bits(c.lockout_rate));
    let _ = writeln!(out, "mean_hunger {}", f64_bits(c.mean_hunger));
    let _ = writeln!(out, "first_meal_p50 {}", f64_bits(c.first_meal_p50));
    let _ = writeln!(out, "first_meal_p90 {}", f64_bits(c.first_meal_p90));
    let _ = writeln!(out, "first_meal_p99 {}", f64_bits(c.first_meal_p99));
    let _ = writeln!(out, "min_meals_mean {}", f64_bits(c.min_meals_mean));
    let _ = writeln!(out, "fairness_mean {}", f64_bits(c.fairness_mean));
    let _ = writeln!(out, "stuck_trials {}", c.stuck_trials);
    let _ = writeln!(out, "unsafe_trials {}", c.unsafe_trials);
    match &c.exact {
        Some(exact) => {
            let _ = writeln!(
                out,
                "exact {} {} {}",
                exact.verdict,
                f64_bits(exact.progress_probability),
                exact.states
            );
        }
        None => {
            let _ = writeln!(out, "exact none");
        }
    }
    out
}

/// Parses a cell-record payload back into a [`CellResult`].
///
/// Parsing is strict — fixed field order, no extra or missing lines — so
/// any torn or hand-edited payload is rejected rather than guessed at.
pub(crate) fn decode_cell_payload(payload: &str) -> Result<CellResult, String> {
    let mut lines = payload.lines();
    let mut field = |name: &str| -> Result<String, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("payload truncated before field {name:?}"))?;
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed payload line {line:?}"))?;
        if key != name {
            return Err(format!("expected field {name:?}, found {key:?}"));
        }
        Ok(value.to_string())
    };
    fn int<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
        value
            .parse()
            .map_err(|_| format!("field {name:?} has invalid value {value:?}"))
    }
    fn bits(name: &str, value: &str) -> Result<f64, String> {
        let raw = u64::from_str_radix(value, 16)
            .map_err(|_| format!("field {name:?} has invalid f64 bits {value:?}"))?;
        if value.len() != 16 {
            return Err(format!("field {name:?} has invalid f64 bits {value:?}"));
        }
        Ok(f64::from_bits(raw))
    }

    let cell = field("cell")?;
    let family = field("family")?;
    let size = int("size", &field("size")?)?;
    let philosophers = int("philosophers", &field("philosophers")?)?;
    let forks = int("forks", &field("forks")?)?;
    let algorithm = field("algorithm")?;
    let adversary = field("adversary")?;
    let trials = int("trials", &field("trials")?)?;
    let max_steps = int("max_steps", &field("max_steps")?)?;
    let seed = int("seed", &field("seed")?)?;
    let deadlock_rate = bits("deadlock_rate", &field("deadlock_rate")?)?;
    let lockout_rate = bits("lockout_rate", &field("lockout_rate")?)?;
    let mean_hunger = bits("mean_hunger", &field("mean_hunger")?)?;
    let first_meal_p50 = bits("first_meal_p50", &field("first_meal_p50")?)?;
    let first_meal_p90 = bits("first_meal_p90", &field("first_meal_p90")?)?;
    let first_meal_p99 = bits("first_meal_p99", &field("first_meal_p99")?)?;
    let min_meals_mean = bits("min_meals_mean", &field("min_meals_mean")?)?;
    let fairness_mean = bits("fairness_mean", &field("fairness_mean")?)?;
    let stuck_trials = int("stuck_trials", &field("stuck_trials")?)?;
    let unsafe_trials = int("unsafe_trials", &field("unsafe_trials")?)?;
    let exact_line = field("exact")?;
    let exact = if exact_line == "none" {
        None
    } else {
        let mut parts = exact_line.split(' ');
        let verdict = parts
            .next()
            .filter(|v| !v.is_empty())
            .ok_or("exact field missing verdict")?
            .to_string();
        let probability = bits(
            "exact probability",
            parts.next().ok_or("exact field missing probability")?,
        )?;
        let states = int(
            "exact states",
            parts.next().ok_or("exact field missing states")?,
        )?;
        if parts.next().is_some() {
            return Err("exact field has trailing tokens".to_string());
        }
        Some(crate::check::ExactCellVerdict {
            verdict,
            progress_probability: probability,
            states,
        })
    };
    if lines.next().is_some() {
        return Err("payload has trailing lines".to_string());
    }
    Ok(CellResult {
        cell,
        family,
        size,
        philosophers,
        forks,
        algorithm,
        adversary,
        trials,
        max_steps,
        seed,
        deadlock_rate,
        lockout_rate,
        mean_hunger,
        first_meal_p50,
        first_meal_p90,
        first_meal_p99,
        min_meals_mean,
        fairness_mean,
        steps_per_sec: None,
        stuck_trials,
        unsafe_trials,
        exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_sweep, SweepOptions};
    use crate::spec::SeedPolicy;

    fn small_report() -> SweepReport {
        let spec = ScenarioSpec::new("fmt")
            .with_families_str("ring")
            .unwrap()
            .with_sizes([3, 4])
            .with_algorithms_str("gdp1")
            .unwrap()
            .with_trials(2)
            .with_max_steps(4_000)
            .with_seed_policy(SeedPolicy::Shared(5));
        run_sweep(&spec, &SweepOptions::quiet()).unwrap()
    }

    #[test]
    fn json_is_balanced_and_carries_every_cell() {
        let report = small_report();
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"cell\":").count(), report.cells.len());
        assert!(json.contains("\"sweep\": \"fmt\""));
        assert!(json.contains("\"deadlock_rate\": 0.000000"));
        // Timing was off: every throughput field is null.
        assert_eq!(
            json.matches("\"steps_per_sec\": null").count(),
            report.cells.len()
        );
    }

    #[test]
    fn json_strings_escape_json_style_not_rust_style() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("a\nb\t"), "\"a\\nb\\t\"");
        // Control characters must use four-digit JSON escapes, not Rust's
        // `\u{1}` form (which no JSON parser accepts).
        assert_eq!(json_str("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn csv_has_header_plus_one_row_per_cell() {
        let report = small_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + report.cells.len());
        assert_eq!(lines[0], csv_header());
        assert!(lines[1].starts_with("ring/n3/GDP1,ring,3,3,3,GDP1,"));
        // Every row has the full column count.
        let columns = csv_header().split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "row: {line}");
        }
    }

    #[test]
    fn cell_payload_round_trips_bit_exactly() {
        let mut report = small_report();
        report.cells[0].exact = Some(crate::check::ExactCellVerdict {
            verdict: "certified".to_string(),
            progress_probability: 1.0_f64 / 3.0,
            states: 12_345,
        });
        // A wall-clock field is deliberately dropped by the codec.
        report.cells[1].steps_per_sec = Some(123.456);
        for cell in &report.cells {
            let decoded = decode_cell_payload(&encode_cell_payload(cell)).unwrap();
            let mut expected = cell.clone();
            expected.steps_per_sec = None;
            assert_eq!(decoded, expected);
            assert_eq!(
                encode_cell_payload(&decoded),
                encode_cell_payload(cell),
                "re-encoding must be a fixed point"
            );
        }
    }

    #[test]
    fn cell_payload_decode_rejects_torn_and_tampered_input() {
        let payload = encode_cell_payload(&small_report().cells[0]);
        // Truncation at every line boundary fails loudly.
        let lines: Vec<&str> = payload.lines().collect();
        for keep in 0..lines.len() {
            let torn = lines[..keep].join("\n");
            assert!(decode_cell_payload(&torn).is_err(), "kept {keep} lines");
        }
        // Trailing garbage, reordered fields and bad floats fail too.
        assert!(decode_cell_payload(&format!("{payload}junk 1\n")).is_err());
        let mut reordered: Vec<&str> = payload.lines().collect();
        reordered.swap(0, 1);
        assert!(decode_cell_payload(&reordered.join("\n")).is_err());
        assert!(
            decode_cell_payload(&payload.replace("deadlock_rate ", "deadlock_rate zz")).is_err()
        );
    }

    #[test]
    fn files_round_trip_to_disk() {
        let report = small_report();
        let dir = std::env::temp_dir();
        let json_path = dir.join("gdp_scenarios_report_test.json");
        let csv_path = dir.join("gdp_scenarios_report_test.csv");
        report.write_json(&json_path).unwrap();
        report.write_csv(&csv_path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&json_path).unwrap(),
            report.to_json()
        );
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), report.to_csv());
        let _ = std::fs::remove_file(json_path);
        let _ = std::fs::remove_file(csv_path);
    }
}
