//! # gdp-picalc
//!
//! Mixed guarded choice for a miniature π-calculus-like process language,
//! resolved with the generalized dining philosophers machinery.
//!
//! The paper's motivation (Sections 1 and 6) is a fully distributed,
//! *compositional* implementation of the π-calculus: the hard part is the
//! **mixed guarded choice** `x!v.P + y?z.Q + …`, where a process offers
//! several input and output alternatives and exactly one of them must be
//! selected, consistently with the partner it synchronizes with.  Resolving
//! which pairs of processes commit to which synchronization is a distributed
//! conflict-resolution problem with exactly the shape of the generalized
//! dining philosophers: committing one synchronization must atomically claim
//! **two** resources (the two participants' choice states), a resource can
//! be contended by arbitrarily many potential synchronizations, and the
//! conflict graph is arbitrary — not a ring.
//!
//! This crate provides the translation:
//!
//! * each **process** (one mixed-choice state) becomes a *fork*;
//! * each **potential synchronization** — a complementary send/receive pair
//!   of guards on the same channel offered by two different processes —
//!   becomes a *philosopher* connecting the two processes' forks;
//! * a [`ChoiceRound`] builds that conflict topology and commits a
//!   conflict-free set of synchronizations by running one thread per
//!   potential synchronization on top of the GDP2-based
//!   [`gdp_runtime::DiningTable`], so the selection is
//!   symmetric, fully distributed, deadlock-free and non-starving — the
//!   guarantees Theorems 3 and 4 provide.
//!
//! ```
//! use gdp_picalc::{ChannelId, ChoiceRound, Guard, ProcessId};
//!
//! // Two clients both want to talk to a server that offers a mixed choice.
//! let mut round = ChoiceRound::new();
//! let server = round.add_process(vec![Guard::recv(ChannelId::new(0)), Guard::send(ChannelId::new(1), 99)]);
//! let client_a = round.add_process(vec![Guard::send(ChannelId::new(0), 7)]);
//! let client_b = round.add_process(vec![Guard::recv(ChannelId::new(1))]);
//! let outcome = round.resolve();
//! // The server synchronizes with exactly one of the clients.
//! assert_eq!(outcome.committed_partner(server).is_some(), true);
//! let partners = [client_a, client_b]
//!     .iter()
//!     .filter(|&&c| outcome.committed_partner(c).is_some())
//!     .count();
//! assert_eq!(partners, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gdp_algorithms::AlgorithmKind;
use gdp_runtime::DiningTable;
use gdp_topology::{ForkId, PhilosopherId, Topology};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Identifier of a process (one mixed-choice state).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Dense index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// Identifier of a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(u32);

impl ChannelId {
    /// Creates a channel identifier.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        ChannelId(index)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan{}", self.0)
    }
}

/// One alternative of a mixed guarded choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Guard {
    /// Offer to send `value` on the channel.
    Send {
        /// The channel.
        channel: ChannelId,
        /// The value to transmit.
        value: u64,
    },
    /// Offer to receive on the channel.
    Recv {
        /// The channel.
        channel: ChannelId,
    },
}

impl Guard {
    /// Convenience constructor for a send guard.
    #[must_use]
    pub const fn send(channel: ChannelId, value: u64) -> Self {
        Guard::Send { channel, value }
    }

    /// Convenience constructor for a receive guard.
    #[must_use]
    pub const fn recv(channel: ChannelId) -> Self {
        Guard::Recv { channel }
    }

    /// The channel this guard refers to.
    #[must_use]
    pub const fn channel(&self) -> ChannelId {
        match *self {
            Guard::Send { channel, .. } | Guard::Recv { channel } => channel,
        }
    }
}

/// A committed synchronization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Synchronization {
    /// The sending process.
    pub sender: ProcessId,
    /// The receiving process.
    pub receiver: ProcessId,
    /// The channel used.
    pub channel: ChannelId,
    /// The value transmitted.
    pub value: u64,
}

/// The result of resolving one round of mixed choices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundOutcome {
    committed: Vec<Synchronization>,
    num_processes: usize,
}

impl RoundOutcome {
    /// All committed synchronizations, in no particular order.
    #[must_use]
    pub fn synchronizations(&self) -> &[Synchronization] {
        &self.committed
    }

    /// The synchronization `process` took part in, if any.
    #[must_use]
    pub fn committed_partner(&self, process: ProcessId) -> Option<Synchronization> {
        self.committed
            .iter()
            .copied()
            .find(|s| s.sender == process || s.receiver == process)
    }

    /// Returns `true` if no further synchronization could have been added —
    /// every uncommitted potential pair has at least one committed endpoint.
    /// This is the "maximality" sanity check used in tests.
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        let mut used = vec![false; self.num_processes];
        for s in &self.committed {
            if used[s.sender.index()] || used[s.receiver.index()] || s.sender == s.receiver {
                return false;
            }
            used[s.sender.index()] = true;
            used[s.receiver.index()] = true;
        }
        true
    }
}

/// A single round of mixed guarded choices awaiting resolution.
#[derive(Clone, Debug, Default)]
pub struct ChoiceRound {
    processes: Vec<Vec<Guard>>,
}

impl ChoiceRound {
    /// Creates an empty round.
    #[must_use]
    pub fn new() -> Self {
        ChoiceRound::default()
    }

    /// Adds a process offering the given alternatives and returns its id.
    pub fn add_process(&mut self, guards: Vec<Guard>) -> ProcessId {
        let id = ProcessId::new(self.processes.len() as u32);
        self.processes.push(guards);
        id
    }

    /// Number of processes in the round.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// All potential synchronizations: complementary guard pairs on the same
    /// channel offered by two distinct processes.
    #[must_use]
    pub fn potential_synchronizations(&self) -> Vec<Synchronization> {
        let mut result = Vec::new();
        for (i, guards_i) in self.processes.iter().enumerate() {
            for (j, guards_j) in self.processes.iter().enumerate() {
                if i == j {
                    continue;
                }
                for gi in guards_i {
                    for gj in guards_j {
                        if let (Guard::Send { channel, value }, Guard::Recv { channel: cr }) =
                            (*gi, *gj)
                        {
                            if channel == cr {
                                result.push(Synchronization {
                                    sender: ProcessId::new(i as u32),
                                    receiver: ProcessId::new(j as u32),
                                    channel,
                                    value,
                                });
                            }
                        }
                    }
                }
            }
        }
        result
    }

    /// The conflict topology of this round: one fork per process, one
    /// philosopher per potential synchronization.  Returns `None` when there
    /// are no potential synchronizations (nothing to resolve) or fewer than
    /// two processes.
    #[must_use]
    pub fn conflict_topology(&self) -> Option<(Topology, Vec<Synchronization>)> {
        let candidates = self.potential_synchronizations();
        if candidates.is_empty() || self.processes.len() < 2 {
            return None;
        }
        let arcs = candidates
            .iter()
            .map(|s| (s.sender.index() as u32, s.receiver.index() as u32));
        let topology = Topology::from_arcs(self.processes.len(), arcs)
            .expect("candidate synchronizations always connect two distinct processes");
        Some((topology, candidates))
    }

    /// Resolves the round: commits a conflict-free set of synchronizations
    /// (each process participates in at most one), chosen by running the
    /// GDP2 protocol with one thread per potential synchronization.
    ///
    /// Progress guarantee: if at least one potential synchronization exists,
    /// at least one is committed (Theorem 3); no process that has a willing,
    /// uncommitted partner is left waiting forever across repeated rounds
    /// (Theorem 4).
    #[must_use]
    pub fn resolve(&self) -> RoundOutcome {
        self.resolve_with(AlgorithmKind::Gdp2)
    }

    /// [`resolve`](Self::resolve) with an explicit conflict-resolution
    /// algorithm, through the runtime's algorithm-generic table API.
    ///
    /// Only algorithms that guarantee progress on arbitrary topologies make
    /// sense here — [`AlgorithmKind::Gdp2`] (the default: lockout-free, so
    /// repeated rounds also stay fair), [`AlgorithmKind::Gdp1`]
    /// (progress only) and [`AlgorithmKind::OrderedForks`] (deadlock-free
    /// but centralized-by-ordering, the baseline the paper argues against).
    /// Passing [`AlgorithmKind::Naive`] can genuinely hang the round.
    #[must_use]
    pub fn resolve_with(&self, algorithm: AlgorithmKind) -> RoundOutcome {
        let Some((topology, candidates)) = self.conflict_topology() else {
            return RoundOutcome {
                committed: Vec::new(),
                num_processes: self.processes.len(),
            };
        };
        let table = DiningTable::for_algorithm(topology, algorithm);
        let committed_flags: Arc<Vec<Mutex<bool>>> = Arc::new(
            (0..self.processes.len())
                .map(|_| Mutex::new(false))
                .collect(),
        );
        let results: Arc<Mutex<Vec<Synchronization>>> = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            for (idx, candidate) in candidates.iter().enumerate() {
                let mut seat = table.seat(PhilosopherId::new(idx as u32));
                let committed_flags = Arc::clone(&committed_flags);
                let results = Arc::clone(&results);
                let candidate = *candidate;
                scope.spawn(move || {
                    // Quick pre-check outside the critical section is only an
                    // optimization; the authoritative check happens while both
                    // forks (process states) are held.
                    seat.dine(|| {
                        let mut sender_state = committed_flags[candidate.sender.index()].lock();
                        let mut receiver_state = committed_flags[candidate.receiver.index()].lock();
                        if !*sender_state && !*receiver_state {
                            *sender_state = true;
                            *receiver_state = true;
                            results.lock().push(candidate);
                        }
                    });
                });
            }
        });

        let committed = Arc::try_unwrap(results)
            .expect("all threads joined")
            .into_inner();
        RoundOutcome {
            committed,
            num_processes: self.processes.len(),
        }
    }
}

/// The forks of the conflict topology are the processes; expose the mapping
/// for diagnostics.
#[must_use]
pub fn process_fork(process: ProcessId) -> ForkId {
    ForkId::new(process.index() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(i: u32) -> ChannelId {
        ChannelId::new(i)
    }

    #[test]
    fn potential_synchronizations_pair_complementary_guards() {
        let mut round = ChoiceRound::new();
        let a = round.add_process(vec![Guard::send(chan(0), 1)]);
        let b = round.add_process(vec![Guard::recv(chan(0))]);
        let _lonely = round.add_process(vec![Guard::recv(chan(9))]);
        let candidates = round.potential_synchronizations();
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].sender, a);
        assert_eq!(candidates[0].receiver, b);
        assert_eq!(candidates[0].value, 1);
    }

    #[test]
    fn a_process_never_commits_twice_in_a_round() {
        // One server with a mixed choice contended by four clients.
        let mut round = ChoiceRound::new();
        let server = round.add_process(vec![Guard::recv(chan(0)), Guard::send(chan(1), 42)]);
        for _ in 0..2 {
            round.add_process(vec![Guard::send(chan(0), 7)]);
        }
        for _ in 0..2 {
            round.add_process(vec![Guard::recv(chan(1))]);
        }
        let outcome = round.resolve();
        assert!(outcome.is_conflict_free());
        // The server commits exactly once (it is the bottleneck resource).
        assert!(outcome.committed_partner(server).is_some());
        assert_eq!(outcome.synchronizations().len(), 1);
    }

    #[test]
    fn progress_whenever_a_synchronization_exists() {
        for trial in 0..5 {
            let mut round = ChoiceRound::new();
            let _ = round.add_process(vec![Guard::send(chan(trial), trial as u64)]);
            let _ = round.add_process(vec![Guard::recv(chan(trial))]);
            let outcome = round.resolve();
            assert_eq!(outcome.synchronizations().len(), 1);
            assert_eq!(outcome.synchronizations()[0].value, trial as u64);
        }
    }

    #[test]
    fn disjoint_pairs_all_commit() {
        // Four processes forming two independent sender/receiver pairs: both
        // pairs must commit (no false conflicts).
        let mut round = ChoiceRound::new();
        let s1 = round.add_process(vec![Guard::send(chan(0), 10)]);
        let r1 = round.add_process(vec![Guard::recv(chan(0))]);
        let s2 = round.add_process(vec![Guard::send(chan(1), 20)]);
        let r2 = round.add_process(vec![Guard::recv(chan(1))]);
        let outcome = round.resolve();
        assert_eq!(outcome.synchronizations().len(), 2);
        assert!(outcome.is_conflict_free());
        assert_eq!(outcome.committed_partner(s1).unwrap().receiver, r1);
        assert_eq!(outcome.committed_partner(s2).unwrap().receiver, r2);
    }

    #[test]
    fn empty_and_degenerate_rounds_resolve_to_nothing() {
        let round = ChoiceRound::new();
        assert_eq!(round.resolve().synchronizations().len(), 0);
        let mut round = ChoiceRound::new();
        round.add_process(vec![Guard::send(chan(0), 1)]);
        round.add_process(vec![Guard::send(chan(0), 2)]);
        // Two senders, nobody to receive.
        assert!(round.conflict_topology().is_none());
        assert_eq!(round.resolve().synchronizations().len(), 0);
    }

    #[test]
    fn repeated_rounds_always_serve_the_server() {
        // Progress across rounds: three clients repeatedly compete for one
        // server; the server synchronizes in *every* round (the within-round
        // progress guarantee).  Which client wins a given round is decided by
        // the OS scheduling of the contending threads; fairness *across*
        // independent rounds is the caller's concern (e.g. by keeping the
        // clients' identities in the payload and rotating offers), since each
        // `ChoiceRound` is a fresh, memory-less conflict instance.
        for round_index in 0..20 {
            let mut round = ChoiceRound::new();
            let server = round.add_process(vec![Guard::recv(chan(0))]);
            let _clients: Vec<ProcessId> = (0..3)
                .map(|c| round.add_process(vec![Guard::send(chan(0), c as u64)]))
                .collect();
            let outcome = round.resolve();
            assert!(
                outcome.committed_partner(server).is_some(),
                "round {round_index}: the server must synchronize"
            );
            assert_eq!(outcome.synchronizations().len(), 1);
        }
    }

    #[test]
    fn a_round_value_can_be_resolved_repeatedly() {
        // `resolve` borrows the round immutably: one ChoiceRound value is a
        // reusable description of the choice instance, and every resolution
        // builds a fresh table — so repeated rounds (the π-calculus
        // execution model: resolve, rewrite, resolve again) need no
        // rebuilding of the guard lists.
        let mut round = ChoiceRound::new();
        let server = round.add_process(vec![Guard::recv(chan(0)), Guard::send(chan(1), 42)]);
        for c in 0..3 {
            round.add_process(vec![Guard::send(chan(0), c)]);
        }
        round.add_process(vec![Guard::recv(chan(1))]);
        for repeat in 0..5 {
            let outcome = round.resolve();
            assert!(outcome.is_conflict_free(), "repeat {repeat}");
            assert!(
                outcome.committed_partner(server).is_some(),
                "repeat {repeat}: the server must synchronize every round"
            );
        }
    }

    #[test]
    fn resolve_with_gdp1_and_ordered_forks_also_commit() {
        use gdp_algorithms::AlgorithmKind;
        for algorithm in [AlgorithmKind::Gdp1, AlgorithmKind::OrderedForks] {
            let mut round = ChoiceRound::new();
            let s = round.add_process(vec![Guard::send(chan(0), 5)]);
            let r = round.add_process(vec![Guard::recv(chan(0))]);
            let outcome = round.resolve_with(algorithm);
            assert_eq!(outcome.synchronizations().len(), 1, "{algorithm}");
            assert_eq!(outcome.committed_partner(s).unwrap().receiver, r);
        }
    }

    /// Seeded random rounds: every resolution must be conflict-free *and*
    /// maximal — after the round, no potential synchronization has both
    /// endpoints uncommitted (each candidate's critical section ran with
    /// both process states held, and would have committed had both still
    /// been free).
    #[test]
    fn random_rounds_commit_conflict_free_maximal_sets() {
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut round = ChoiceRound::new();
            let processes = rng.gen_range(3..8usize);
            let channels = rng.gen_range(1..4u32);
            for _ in 0..processes {
                let guards = (0..rng.gen_range(1..4usize))
                    .map(|_| {
                        let channel = chan(rng.gen_range(0..channels));
                        if rng.gen_bool(0.5) {
                            Guard::send(channel, rng.gen_range(0..100))
                        } else {
                            Guard::recv(channel)
                        }
                    })
                    .collect();
                round.add_process(guards);
            }
            let candidates = round.potential_synchronizations();
            let outcome = round.resolve();
            assert!(outcome.is_conflict_free(), "seed {seed}");
            // Committed synchronizations come from the candidate set.
            for s in outcome.synchronizations() {
                assert!(candidates.contains(s), "seed {seed}: alien commit {s:?}");
            }
            // Maximality: an uncommitted candidate must have a committed
            // endpoint.
            for c in &candidates {
                let sender_busy = outcome.committed_partner(c.sender).is_some();
                let receiver_busy = outcome.committed_partner(c.receiver).is_some();
                assert!(
                    sender_busy || receiver_busy,
                    "seed {seed}: candidate {c:?} was left on the table"
                );
            }
        }
    }

    /// Regression: a process offering only guards with no complementary
    /// partner must never commit — even when other processes around it do.
    #[test]
    fn a_process_with_no_complementary_partner_never_commits() {
        for seed in 0..4u64 {
            let mut round = ChoiceRound::new();
            // chan(7) is send-only in this round: no receiver exists.
            let lonely = round.add_process(vec![Guard::send(chan(7), seed)]);
            let s = round.add_process(vec![Guard::send(chan(0), 1)]);
            let r = round.add_process(vec![Guard::recv(chan(0))]);
            // A second would-be receiver on chan(7)... also sending: still
            // no complementary pair.
            let lonely2 = round.add_process(vec![Guard::send(chan(7), 9)]);
            let outcome = round.resolve();
            assert!(outcome.committed_partner(lonely).is_none(), "seed {seed}");
            assert!(outcome.committed_partner(lonely2).is_none(), "seed {seed}");
            assert_eq!(outcome.synchronizations().len(), 1);
            assert_eq!(outcome.committed_partner(s).unwrap().receiver, r);
        }
    }

    #[test]
    fn process_fork_mapping_is_the_identity_on_indices() {
        assert_eq!(process_fork(ProcessId::new(3)), ForkId::new(3));
        assert_eq!(ProcessId::new(5).to_string(), "proc5");
        assert_eq!(ChannelId::new(2).to_string(), "chan2");
        assert_eq!(Guard::recv(chan(4)).channel(), chan(4));
        assert_eq!(Guard::send(chan(4), 0).channel(), chan(4));
    }
}
