//! The algorithm interface: programs, atomic steps, and the per-step context.
//!
//! A [`Program`] is the code run by **every** philosopher — the symmetry
//! requirement of the paper is enforced structurally: the engine instantiates
//! one `Program` value for the whole system, gives every philosopher the same
//! [`Program::initial_state`], and philosophers can only influence each other
//! through the fork operations exposed by [`StepCtx`].
//!
//! One call to [`Program::step`] models one numbered line of the paper's
//! pseudo-code (Tables 1–4) and is atomic with respect to the adversary.

use crate::draws::DrawTape;
use crate::fork::ForkCell;
use crate::hunger::HungerModel;
use gdp_topology::{ForkEnds, ForkId, PhilosopherId, Side};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::hash::Hash;

/// Where a step's random draws come from: the engine's seeded RNG (normal
/// simulation) or a scripted [`DrawTape`] (replay / exhaustive branch
/// enumeration, see [`crate::draws`]).
pub(crate) enum StepRandomness<'a> {
    /// Draws are sampled from the engine RNG.
    Sampled(&'a mut ChaCha8Rng),
    /// Draws are read from a scripted tape.
    Scripted(&'a mut DrawTape),
}

/// How a [`StepCtx`] reaches the shared fork cells.
///
/// The engine owns every fork in one contiguous slice; a real-concurrency
/// runtime (`gdp-runtime`) instead holds two mutex guards — one per adjacent
/// fork — for the duration of a single atomic step.  Both shapes expose the
/// same two cells to the program, so the *identical* algorithm code runs in
/// the simulator and on real threads.
enum ForkAccess<'a> {
    /// All fork cells, indexed by [`ForkId::index`] (the engine).
    Slice(&'a mut [ForkCell]),
    /// Exactly the stepping philosopher's two cells (the threaded runtime).
    Pair {
        /// The cell of the philosopher's left fork.
        left: &'a mut ForkCell,
        /// The cell of the philosopher's right fork.
        right: &'a mut ForkCell,
    },
}

/// The coarse phase of a philosopher, used for progress / lockout analysis.
///
/// These are the `T` (trying) and `E` (eating) state sets of the paper's
/// progress statements, plus the thinking phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The philosopher is thinking (may or may not ever become hungry).
    Thinking,
    /// The philosopher is hungry and executing its trying section.
    Hungry,
    /// The philosopher is eating.
    Eating,
}

impl Phase {
    /// Returns `true` for [`Phase::Hungry`].
    #[must_use]
    pub fn is_hungry(self) -> bool {
        matches!(self, Phase::Hungry)
    }

    /// Returns `true` for [`Phase::Eating`].
    #[must_use]
    pub fn is_eating(self) -> bool {
        matches!(self, Phase::Eating)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Thinking => write!(f, "thinking"),
            Phase::Hungry => write!(f, "hungry"),
            Phase::Eating => write!(f, "eating"),
        }
    }
}

/// What a philosopher did in one atomic step.  Recorded in the
/// [`Trace`](crate::Trace) and visible to adversaries through the
/// [`SystemView`](crate::SystemView).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Action {
    /// The philosopher was scheduled while thinking and kept thinking.
    KeepThinking,
    /// The philosopher became hungry and entered its trying section.
    BecomeHungry,
    /// LR2/GDP2 line 2: the philosopher inserted its id into both request lists.
    RegisterRequests,
    /// The philosopher committed to `fork` as the first fork to acquire.
    /// `random` is `true` for LR1/LR2 (a coin flip) and `false` for GDP1/GDP2
    /// (deterministic choice of the higher-`nr` fork).
    Commit {
        /// The fork committed to.
        fork: ForkId,
        /// Whether the commitment was the outcome of a random draw.
        random: bool,
    },
    /// Attempted to take the first fork (test-and-set).
    TakeFirst {
        /// The fork tested.
        fork: ForkId,
        /// Whether the test-and-set succeeded.
        success: bool,
    },
    /// Attempted to take the second fork; on failure the first fork was
    /// released in the same atomic step, as in line 4 of LR1.
    TakeSecond {
        /// The fork tested.
        fork: ForkId,
        /// Whether the test-and-set succeeded.
        success: bool,
    },
    /// GDP1/GDP2: the philosopher re-drew the priority number of the fork it
    /// holds because it collided with the other fork's number.
    RelabelFork {
        /// The fork whose number changed.
        fork: ForkId,
        /// The new priority number.
        nr: u32,
    },
    /// A generic atomic test-and-set on a fork, for user-defined programs.
    TestAndSet {
        /// The fork tested.
        fork: ForkId,
    },
    /// The philosopher started eating.
    StartEating,
    /// The philosopher finished eating (and released its forks / signed guest
    /// books, depending on the algorithm).
    FinishEating,
    /// The philosopher released `fork` outside of the combined steps above.
    Release {
        /// The fork released.
        fork: ForkId,
    },
    /// The philosopher was scheduled but could not act (busy-wait).
    Wait,
    /// An algorithm-specific action not covered by the shared vocabulary.
    Custom(&'static str),
}

impl Action {
    /// Returns `true` if the action acquired a fork.
    #[must_use]
    pub fn acquired_fork(&self) -> bool {
        matches!(
            self,
            Action::TakeFirst { success: true, .. } | Action::TakeSecond { success: true, .. }
        )
    }
}

/// What an adversary (and the metrics layer) may observe about a
/// philosopher's private program state.
///
/// The paper's adversary has complete information about the computation so
/// far, including commitments made by philosophers (the "empty arrow" in the
/// paper's figures); programs expose exactly that through this struct.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgramObservation {
    /// The philosopher's coarse phase.
    pub phase: Phase,
    /// The fork the philosopher is currently committed to acquiring first
    /// (the empty arrow of the paper's figures), if any.
    pub committed: Option<ForkId>,
    /// A short label identifying the program counter, e.g. `"LR1.3"`.
    pub label: &'static str,
}

/// A philosopher algorithm.
///
/// Implementations for the paper's Tables 1–4 (LR1, LR2, GDP1, GDP2) live in
/// the `gdp-algorithms` crate; custom programs can be supplied by users.
///
/// The associated `State` is the philosopher's *private* memory.  It must be
/// `Clone + Eq + Hash` so that executions can be snapshotted and compared —
/// the analysis crate uses this to detect the no-progress cycles that the
/// paper's adversaries induce.
pub trait Program {
    /// Private per-philosopher control state.
    type State: Clone + Eq + Hash + fmt::Debug;

    /// A short human-readable name, e.g. `"LR1"`.
    fn name(&self) -> &'static str;

    /// The state every philosopher starts in (the same for all, by symmetry).
    fn initial_state(&self) -> Self::State;

    /// The observable part of a private state.
    ///
    /// `ends` is the philosopher's own fork pair, provided so the program can
    /// report which concrete fork it is committed to (the "empty arrow" of
    /// the paper's figures) without storing topology information in its
    /// private state.
    fn observation(&self, state: &Self::State, ends: ForkEnds) -> ProgramObservation;

    /// Executes one atomic step for the scheduled philosopher.
    ///
    /// The step may perform any number of operations on the philosopher's own
    /// two forks through `ctx`; the engine guarantees the whole step is
    /// atomic with respect to other philosophers.
    fn step(&self, state: &mut Self::State, ctx: &mut StepCtx<'_>) -> Action;
}

/// The restricted, per-step view a philosopher has of the system.
///
/// A `StepCtx` only exposes the philosopher's own two forks and its private
/// randomness.  Any attempt to operate on a fork that is not adjacent to the
/// philosopher panics: that would violate the problem's full-distribution
/// requirement and indicates a bug in an algorithm implementation.
pub struct StepCtx<'a> {
    me: PhilosopherId,
    ends: ForkEnds,
    forks: ForkAccess<'a>,
    randomness: StepRandomness<'a>,
    hunger: &'a HungerModel,
    left_bias: f64,
    nr_range: u32,
}

impl<'a> StepCtx<'a> {
    /// Creates a step context.  Only the engine does this.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: PhilosopherId,
        ends: ForkEnds,
        forks: &'a mut [ForkCell],
        randomness: StepRandomness<'a>,
        hunger: &'a HungerModel,
        left_bias: f64,
        nr_range: u32,
    ) -> Self {
        StepCtx {
            me,
            ends,
            forks: ForkAccess::Slice(forks),
            randomness,
            hunger,
            left_bias,
            nr_range,
        }
    }

    /// Creates a step context over exactly one philosopher's two fork cells —
    /// the entry point for **real-concurrency** runtimes.
    ///
    /// `gdp-runtime` stores each [`ForkCell`] behind its own mutex; to execute
    /// one atomic program step it locks the philosopher's two cells (in
    /// global fork-id order, so lock acquisition cannot deadlock), builds this
    /// context from the two guards, and runs the *same*
    /// [`Program::step`] code the simulator runs.  Holding both locks for the
    /// duration of the step is what realizes the paper's "test-and-set
    /// operations on the forks are performed atomically" assumption on real
    /// threads, so the two layers cannot drift semantically.
    ///
    /// Random draws are sampled from `rng` (each seat owns a private seeded
    /// RNG); `left_bias` and `nr_range` have the same meaning as in
    /// [`SimConfig`](crate::SimConfig).
    ///
    /// # Panics
    ///
    /// Panics if `ends.left == ends.right`: a philosopher contends for two
    /// *distinct* forks by definition of the problem, and two aliasing
    /// `&mut` cells could not be constructed anyway.
    #[allow(clippy::too_many_arguments)]
    pub fn for_fork_pair(
        me: PhilosopherId,
        ends: ForkEnds,
        left: &'a mut ForkCell,
        right: &'a mut ForkCell,
        rng: &'a mut ChaCha8Rng,
        hunger: &'a HungerModel,
        left_bias: f64,
        nr_range: u32,
    ) -> Self {
        assert!(
            ends.left != ends.right,
            "philosopher {me} must contend for two distinct forks, got {} twice",
            ends.left
        );
        StepCtx {
            me,
            ends,
            forks: ForkAccess::Pair { left, right },
            randomness: StepRandomness::Sampled(rng),
            hunger,
            left_bias,
            nr_range,
        }
    }

    /// Draws a biased coin from whichever randomness source backs this step.
    fn draw_coin(&mut self, p_true: f64) -> bool {
        match &mut self.randomness {
            StepRandomness::Sampled(rng) => rng.gen_bool(p_true),
            StepRandomness::Scripted(tape) => tape.draw_coin(p_true),
        }
    }

    /// The identity of the philosopher executing this step.
    ///
    /// Programs must not branch on this value (that would break symmetry);
    /// it is exposed because the fork-local data structures of LR2/GDP2 store
    /// philosopher ids in request lists and guest books.  The symmetry tests
    /// in `gdp-algorithms` verify that behaviour is invariant under
    /// relabelling.
    #[must_use]
    pub fn me(&self) -> PhilosopherId {
        self.me
    }

    /// This philosopher's left fork.
    #[must_use]
    pub fn left(&self) -> ForkId {
        self.ends.left
    }

    /// This philosopher's right fork.
    #[must_use]
    pub fn right(&self) -> ForkId {
        self.ends.right
    }

    /// The fork on `side`.
    #[must_use]
    pub fn fork_on(&self, side: Side) -> ForkId {
        self.ends.on(side)
    }

    /// Given one of this philosopher's forks, returns the other one.
    ///
    /// # Panics
    ///
    /// Panics if `fork` is not adjacent to this philosopher.
    #[must_use]
    pub fn other(&self, fork: ForkId) -> ForkId {
        self.check_adjacent(fork);
        self.ends.other(fork)
    }

    fn check_adjacent(&self, fork: ForkId) {
        assert!(
            self.ends.contains(fork),
            "philosopher {} attempted to access fork {} which is not adjacent to it \
             (adjacent forks: {} and {}); this violates full distribution",
            self.me,
            fork,
            self.ends.left,
            self.ends.right
        );
    }

    fn cell(&mut self, fork: ForkId) -> &mut ForkCell {
        self.check_adjacent(fork);
        match &mut self.forks {
            ForkAccess::Slice(cells) => &mut cells[fork.index()],
            ForkAccess::Pair { left, right } => {
                if fork == self.ends.left {
                    left
                } else {
                    right
                }
            }
        }
    }

    fn cell_ref(&self, fork: ForkId) -> &ForkCell {
        self.check_adjacent(fork);
        match &self.forks {
            ForkAccess::Slice(cells) => &cells[fork.index()],
            ForkAccess::Pair { left, right } => {
                if fork == self.ends.left {
                    left
                } else {
                    right
                }
            }
        }
    }

    /// Returns `true` if `fork` is currently free.
    #[must_use]
    pub fn is_free(&self, fork: ForkId) -> bool {
        self.cell_ref(fork).is_free()
    }

    /// Atomic test-and-set: takes `fork` if it is free, returning whether the
    /// acquisition succeeded.
    pub fn take_if_free(&mut self, fork: ForkId) -> bool {
        let me = self.me;
        self.cell(fork).take_if_free(me)
    }

    /// Releases `fork` if this philosopher holds it; returns whether a
    /// release happened.
    pub fn release(&mut self, fork: ForkId) -> bool {
        let me = self.me;
        self.cell(fork).release(me)
    }

    /// Returns `true` if this philosopher currently holds `fork`.
    #[must_use]
    pub fn holds(&self, fork: ForkId) -> bool {
        self.cell_ref(fork).holder() == Some(self.me)
    }

    /// The priority number `nr` of `fork` (GDP1/GDP2).
    #[must_use]
    pub fn nr(&self, fork: ForkId) -> u32 {
        self.cell_ref(fork).nr()
    }

    /// Sets the priority number of `fork` (GDP1/GDP2 relabelling).
    pub fn set_nr(&mut self, fork: ForkId, value: u32) {
        self.cell(fork).set_nr(value);
    }

    /// Inserts this philosopher into the request list of `fork` (LR2/GDP2).
    pub fn insert_request(&mut self, fork: ForkId) {
        let me = self.me;
        self.cell(fork).insert_request(me);
    }

    /// Removes this philosopher from the request list of `fork` (LR2/GDP2).
    pub fn remove_request(&mut self, fork: ForkId) {
        let me = self.me;
        self.cell(fork).remove_request(me);
    }

    /// Signs the guest book of `fork` for this philosopher (LR2/GDP2).
    pub fn sign_guest_book(&mut self, fork: ForkId) {
        let me = self.me;
        self.cell(fork).sign_guest_book(me);
    }

    /// The courtesy condition `Cond(fork)` of LR2/GDP2 for this philosopher.
    #[must_use]
    pub fn courtesy_holds(&self, fork: ForkId) -> bool {
        self.cell_ref(fork).courtesy_holds(self.me)
    }

    /// The inclusive upper bound `m` of the priority-number range `[1, m]`
    /// configured for this run (GDP1/GDP2 require `m >= k`).
    #[must_use]
    pub fn nr_range(&self) -> u32 {
        self.nr_range
    }

    /// Draws a uniformly random priority number in `[1, m]` (Table 3 line 4).
    pub fn random_nr(&mut self) -> u32 {
        let m = self.nr_range;
        match &mut self.randomness {
            StepRandomness::Sampled(rng) => rng.gen_range(1..=m),
            StepRandomness::Scripted(tape) => tape.draw_uniform(m),
        }
    }

    /// Draws a random side: `Left` with the configured bias (default 1/2),
    /// `Right` otherwise (Table 1 line 2).
    pub fn random_side(&mut self) -> Side {
        if self.draw_coin(self.left_bias) {
            Side::Left
        } else {
            Side::Right
        }
    }

    /// Draws a random first fork: convenience wrapper around
    /// [`random_side`](Self::random_side).
    pub fn random_first_fork(&mut self) -> ForkId {
        let side = self.random_side();
        self.fork_on(side)
    }

    /// Consults the hunger model: returns `true` if a thinking philosopher
    /// scheduled now stops thinking and becomes hungry.
    pub fn becomes_hungry(&mut self) -> bool {
        match self.hunger.resolve() {
            Ok(deterministic) => deterministic,
            Err(p) => self.draw_coin(p),
        }
    }
}

impl fmt::Debug for StepCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepCtx")
            .field("me", &self.me)
            .field("left", &self.ends.left)
            .field("right", &self.ends.right)
            .field("nr_range", &self.nr_range)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx_parts() -> (Vec<ForkCell>, ChaCha8Rng, HungerModel) {
        (
            vec![ForkCell::new(), ForkCell::new(), ForkCell::new()],
            ChaCha8Rng::seed_from_u64(42),
            HungerModel::Always,
        )
    }

    fn make_ctx<'a>(
        forks: &'a mut [ForkCell],
        rng: &'a mut ChaCha8Rng,
        hunger: &'a HungerModel,
    ) -> StepCtx<'a> {
        StepCtx::new(
            PhilosopherId::new(0),
            ForkEnds::new(ForkId::new(0), ForkId::new(1)),
            forks,
            StepRandomness::Sampled(rng),
            hunger,
            0.5,
            10,
        )
    }

    #[test]
    fn ctx_exposes_only_adjacent_forks() {
        let (mut forks, mut rng, hunger) = ctx_parts();
        let mut ctx = make_ctx(&mut forks, &mut rng, &hunger);
        assert_eq!(ctx.left(), ForkId::new(0));
        assert_eq!(ctx.right(), ForkId::new(1));
        assert_eq!(ctx.other(ForkId::new(0)), ForkId::new(1));
        assert!(ctx.is_free(ForkId::new(0)));
        assert!(ctx.take_if_free(ForkId::new(0)));
        assert!(ctx.holds(ForkId::new(0)));
        assert!(ctx.release(ForkId::new(0)));
    }

    #[test]
    #[should_panic(expected = "violates full distribution")]
    fn touching_a_non_adjacent_fork_panics() {
        let (mut forks, mut rng, hunger) = ctx_parts();
        let mut ctx = make_ctx(&mut forks, &mut rng, &hunger);
        let _ = ctx.take_if_free(ForkId::new(2));
    }

    #[test]
    fn random_nr_is_in_range() {
        let (mut forks, mut rng, hunger) = ctx_parts();
        let mut ctx = make_ctx(&mut forks, &mut rng, &hunger);
        for _ in 0..1000 {
            let nr = ctx.random_nr();
            assert!((1..=10).contains(&nr));
        }
    }

    #[test]
    fn random_side_respects_bias() {
        let (mut forks, mut rng, hunger) = ctx_parts();
        // Bias 1.0: always left.
        let mut ctx = StepCtx::new(
            PhilosopherId::new(0),
            ForkEnds::new(ForkId::new(0), ForkId::new(1)),
            &mut forks,
            StepRandomness::Sampled(&mut rng),
            &hunger,
            1.0,
            10,
        );
        for _ in 0..50 {
            assert_eq!(ctx.random_side(), Side::Left);
            assert_eq!(ctx.random_first_fork(), ForkId::new(0));
        }
    }

    #[test]
    fn request_and_guest_book_operations_are_scoped_to_me() {
        let (mut forks, mut rng, hunger) = ctx_parts();
        {
            let mut ctx = make_ctx(&mut forks, &mut rng, &hunger);
            ctx.insert_request(ForkId::new(0));
            assert!(ctx.courtesy_holds(ForkId::new(0)));
            ctx.sign_guest_book(ForkId::new(0));
            ctx.remove_request(ForkId::new(0));
        }
        assert_eq!(forks[0].requests(), &[]);
        assert_eq!(forks[0].guest_book_len(), 1);
    }

    #[test]
    fn fork_pair_backend_matches_slice_backend() {
        // The runtime-facing two-cell constructor must expose the same
        // operations, routed to the correct cell.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let hunger = HungerModel::Always;
        let mut left = ForkCell::new();
        let mut right = ForkCell::new();
        right.set_nr(9);
        let ends = ForkEnds::new(ForkId::new(3), ForkId::new(7));
        let mut ctx = StepCtx::for_fork_pair(
            PhilosopherId::new(1),
            ends,
            &mut left,
            &mut right,
            &mut rng,
            &hunger,
            0.5,
            10,
        );
        assert_eq!(ctx.left(), ForkId::new(3));
        assert_eq!(ctx.nr(ForkId::new(7)), 9, "reads route to the right cell");
        assert!(ctx.take_if_free(ForkId::new(3)));
        assert!(ctx.holds(ForkId::new(3)));
        assert!(!ctx.holds(ForkId::new(7)));
        ctx.insert_request(ForkId::new(7));
        ctx.set_nr(ForkId::new(3), 4);
        assert!(ctx.becomes_hungry());
        let _ = ctx;
        assert_eq!(left.holder(), Some(PhilosopherId::new(1)));
        assert_eq!(left.nr(), 4);
        assert!(right.is_free());
        assert_eq!(right.requests(), &[PhilosopherId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "two distinct forks")]
    fn fork_pair_backend_rejects_aliased_ends() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let hunger = HungerModel::Always;
        let mut left = ForkCell::new();
        let mut right = ForkCell::new();
        let _ = StepCtx::for_fork_pair(
            PhilosopherId::new(0),
            ForkEnds::new(ForkId::new(2), ForkId::new(2)),
            &mut left,
            &mut right,
            &mut rng,
            &hunger,
            0.5,
            10,
        );
    }

    #[test]
    fn phase_predicates() {
        assert!(Phase::Hungry.is_hungry());
        assert!(!Phase::Thinking.is_hungry());
        assert!(Phase::Eating.is_eating());
        assert_eq!(Phase::Eating.to_string(), "eating");
    }

    #[test]
    fn action_acquired_fork_predicate() {
        assert!(Action::TakeFirst {
            fork: ForkId::new(0),
            success: true
        }
        .acquired_fork());
        assert!(!Action::TakeFirst {
            fork: ForkId::new(0),
            success: false
        }
        .acquired_fork());
        assert!(!Action::Wait.acquired_fork());
    }
}
