//! Simulation configuration.

use crate::hunger::HungerModel;

/// Configuration of one simulated execution.
///
/// `SimConfig` is a plain value with builder-style `with_*` methods:
///
/// ```
/// use gdp_sim::{SimConfig, HungerModel};
/// let config = SimConfig::default()
///     .with_seed(7)
///     .with_hunger(HungerModel::Bernoulli(0.5))
///     .with_trace(true);
/// assert_eq!(config.seed, 7);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Seed for the philosophers' private randomness.  Two runs with the same
    /// topology, program, adversary and seed are identical.
    pub seed: u64,
    /// When does a thinking philosopher become hungry?
    pub hunger: HungerModel,
    /// Probability that `random_choice(left, right)` returns `left`.
    /// The paper notes its negative results hold for any positive bias; the
    /// classic algorithms use 1/2.
    pub left_bias: f64,
    /// Inclusive upper bound `m` of the priority-number range `[1, m]` drawn
    /// by GDP1/GDP2.  `None` means "use the number of forks `k`", the
    /// smallest value permitted by the paper's requirement `m >= k`.
    pub nr_range: Option<u32>,
    /// Whether to record a full [`Trace`](crate::Trace) of the execution.
    /// Tracing costs memory proportional to the number of steps; metrics are
    /// collected either way.
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            hunger: HungerModel::Always,
            left_bias: 0.5,
            nr_range: None,
            record_trace: false,
        }
    }
}

impl SimConfig {
    /// Creates the default configuration (seed 0, always hungry, fair coin,
    /// `m = k`, no trace).
    #[must_use]
    pub fn new() -> Self {
        SimConfig::default()
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the hunger model.
    #[must_use]
    pub fn with_hunger(mut self, hunger: HungerModel) -> Self {
        self.hunger = hunger;
        self
    }

    /// Sets the probability of drawing the left fork in `random_choice`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not in `(0, 1)`: the paper requires every outcome
    /// of the draw to have positive probability.
    #[must_use]
    pub fn with_left_bias(mut self, bias: f64) -> Self {
        assert!(
            bias > 0.0 && bias < 1.0,
            "left bias must be strictly between 0 and 1, got {bias}"
        );
        self.left_bias = bias;
        self
    }

    /// Sets the upper bound `m` of the GDP priority-number range `[1, m]`.
    #[must_use]
    pub fn with_nr_range(mut self, m: u32) -> Self {
        self.nr_range = Some(m);
        self
    }

    /// Enables or disables trace recording.
    #[must_use]
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Resolves the effective `m` for a system with `num_forks` forks:
    /// the configured value if present (clamped up to `num_forks` to honour
    /// the paper's `m >= k` requirement), otherwise exactly `num_forks`.
    #[must_use]
    pub fn effective_nr_range(&self, num_forks: usize) -> u32 {
        let k = num_forks as u32;
        match self.nr_range {
            Some(m) => m.max(k),
            None => k.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let c = SimConfig::new()
            .with_seed(9)
            .with_left_bias(0.25)
            .with_nr_range(100)
            .with_hunger(HungerModel::Never)
            .with_trace(true);
        assert_eq!(c.seed, 9);
        assert_eq!(c.left_bias, 0.25);
        assert_eq!(c.nr_range, Some(100));
        assert_eq!(c.hunger, HungerModel::Never);
        assert!(c.record_trace);
    }

    #[test]
    fn effective_nr_range_enforces_m_at_least_k() {
        let c = SimConfig::default();
        assert_eq!(c.effective_nr_range(5), 5);
        // Configured below k: clamped up to k.
        let c = SimConfig::default().with_nr_range(2);
        assert_eq!(c.effective_nr_range(7), 7);
        // Configured above k: honoured.
        let c = SimConfig::default().with_nr_range(64);
        assert_eq!(c.effective_nr_range(7), 64);
    }

    #[test]
    #[should_panic(expected = "left bias")]
    fn degenerate_bias_rejected() {
        let _ = SimConfig::default().with_left_bias(0.0);
    }

    #[test]
    fn default_values_match_paper_assumptions() {
        let c = SimConfig::default();
        assert_eq!(c.left_bias, 0.5);
        assert_eq!(c.hunger, HungerModel::Always);
        assert!(!c.record_trace);
        assert_eq!(c.nr_range, None);
    }
}
