//! One shared fingerprinting helper.
//!
//! Everything in this workspace that needs a 64-bit state digest (the
//! engine's [`state_fingerprint`](crate::Engine::state_fingerprint), the
//! analysis crate's state-space exploration, `gdp-mcheck`'s canonical state
//! encoding) goes through [`fingerprint64`] instead of setting up an ad-hoc
//! hasher at each call site.
//!
//! The hasher is a fixed-key multiply-rotate design (the `FxHash` family):
//! exact model checking fingerprints tens of millions of states and sits on
//! this function for a large share of its wall-clock, so the `SipHash`
//! `DefaultHasher` used before PR 3 was replaced with something ~5× faster.
//! Fingerprints are deterministic within a build and never persisted.
//!
//! **Collision caveat**: everything that dedups states by fingerprint —
//! the bounded explorers and `gdp-mcheck`'s canonical state keys — silently
//! merges two states on a 64-bit collision.  At the largest space this
//! workspace checks (~4 × 10⁶ canonical states) the birthday bound for an
//! ideal 64-bit hash is ≈ 4 × 10⁻⁷ per run; `gdp-mcheck` documents this as
//! a standing caveat of its certificates (`docs/VERIFICATION.md`), and the
//! final avalanche round below exists to keep the bound meaningful for
//! structured state data.

use std::hash::{Hash, Hasher};

/// The multiplier of the FxHash mixing step (the 64-bit golden ratio, as
/// used by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, fixed-key 64-bit hasher (FxHash-style
/// multiply-rotate), used solely for in-memory state fingerprints.
#[derive(Clone, Debug, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche round so trailing small writes diffuse into
        // the high bits.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(SEED);
        h ^= h >> 29;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        self.add_to_hash(value as u64);
        self.add_to_hash((value >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }
}

/// Hashes `value` to a deterministic 64-bit fingerprint.
///
/// ```
/// use gdp_sim::fingerprint64;
/// let a = fingerprint64(&("state", 42u64));
/// let b = fingerprint64(&("state", 42u64));
/// assert_eq!(a, b);
/// assert_ne!(a, fingerprint64(&("state", 43u64)));
/// ```
#[must_use]
pub fn fingerprint64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher64::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(fingerprint64(&[1u8, 2, 3]), fingerprint64(&[1u8, 2, 3]));
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
    }

    #[test]
    fn distinct_values_usually_hash_distinct() {
        let fingerprints: std::collections::HashSet<u64> =
            (0u64..100_000).map(|i| fingerprint64(&i)).collect();
        assert_eq!(fingerprints.len(), 100_000);
    }

    #[test]
    fn byte_streams_with_different_lengths_hash_distinct() {
        // Zero-padding in the tail path must not collide with explicit
        // zero bytes.
        assert_ne!(fingerprint64(&[0u8][..]), fingerprint64(&[0u8, 0][..]));
        let empty: &[u8] = &[];
        assert_ne!(fingerprint64(empty), fingerprint64(&[0u8][..]));
    }
}
