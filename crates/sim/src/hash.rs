//! One shared fingerprinting helper.
//!
//! Everything in this workspace that needs a 64-bit state digest (the
//! engine's [`state_fingerprint`](crate::Engine::state_fingerprint), the
//! analysis crate's state-space exploration) goes through [`fingerprint64`]
//! instead of setting up an ad-hoc hasher at each call site.  The hasher is
//! `std`'s `DefaultHasher` constructed with fixed keys, so fingerprints are
//! deterministic within a build — which is all the exploration code relies
//! on; fingerprints are never persisted.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Hashes `value` to a deterministic 64-bit fingerprint.
///
/// ```
/// use gdp_sim::fingerprint64;
/// let a = fingerprint64(&("state", 42u64));
/// let b = fingerprint64(&("state", 42u64));
/// assert_eq!(a, b);
/// assert_ne!(a, fingerprint64(&("state", 43u64)));
/// ```
#[must_use]
pub fn fingerprint64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(fingerprint64(&[1u8, 2, 3]), fingerprint64(&[1u8, 2, 3]));
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
    }

    #[test]
    fn distinct_values_usually_hash_distinct() {
        let fingerprints: std::collections::HashSet<u64> =
            (0u64..1_000).map(|i| fingerprint64(&i)).collect();
        assert_eq!(fingerprints.len(), 1_000);
    }
}
