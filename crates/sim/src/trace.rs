//! Execution traces.
//!
//! A trace is the full record of one computation: which philosopher was
//! scheduled at each step, what atomic action it performed and what phase it
//! was in afterwards.  Traces support the fairness accounting that the
//! paper's adversary constructions hinge on (the "increasing stubbornness"
//! technique produces *fair* schedules, which we verify on actual runs), and
//! feed the progress/lockout checkers of `gdp-analysis`.

use crate::program::{Action, Phase};
use gdp_topology::PhilosopherId;

/// One scheduled atomic step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepRecord {
    /// Global step index (0-based).
    pub step: u64,
    /// The philosopher that was scheduled.
    pub philosopher: PhilosopherId,
    /// The atomic action it performed.
    pub action: Action,
    /// Its phase after the step.
    pub phase_after: Phase,
}

/// A recorded execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    records: Vec<StepRecord>,
    num_philosophers: usize,
}

impl Trace {
    /// Creates an empty trace for a system with `num_philosophers` philosophers.
    #[must_use]
    pub fn new(num_philosophers: usize) -> Self {
        Trace {
            records: Vec::new(),
            num_philosophers,
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: StepRecord) {
        self.records.push(record);
    }

    /// Number of recorded steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no step has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of philosophers in the system this trace was recorded from.
    #[must_use]
    pub fn num_philosophers(&self) -> usize {
        self.num_philosophers
    }

    /// All records, in execution order.
    #[must_use]
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Iterator over the records.
    pub fn iter(&self) -> impl Iterator<Item = &StepRecord> {
        self.records.iter()
    }

    /// The steps at which some philosopher *started* eating, with the eater.
    #[must_use]
    pub fn meals_started(&self) -> Vec<(u64, PhilosopherId)> {
        self.records
            .iter()
            .filter(|r| matches!(r.action, Action::StartEating))
            .map(|r| (r.step, r.philosopher))
            .collect()
    }

    /// The steps at which some philosopher *finished* eating, with the eater.
    #[must_use]
    pub fn meals_finished(&self) -> Vec<(u64, PhilosopherId)> {
        self.records
            .iter()
            .filter(|r| matches!(r.action, Action::FinishEating))
            .map(|r| (r.step, r.philosopher))
            .collect()
    }

    /// How many times each philosopher was scheduled.
    #[must_use]
    pub fn scheduling_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_philosophers];
        for r in &self.records {
            counts[r.philosopher.index()] += 1;
        }
        counts
    }

    /// The **bounded-fairness bound** of this trace: the smallest `B` such
    /// that every philosopher is scheduled at least once in every window of
    /// `B` consecutive steps (ignoring the truncated final window).
    ///
    /// Returns `None` if some philosopher is never scheduled at all — such a
    /// finite prefix cannot be certified fair.
    ///
    /// A genuinely fair infinite schedule restricted to a finite prefix
    /// always yields *some* finite bound; the adversaries in `gdp-adversary`
    /// report their bound so experiments can state "the defeating schedule
    /// was B-fair for B = ...", mirroring the paper's fairness discussion.
    #[must_use]
    pub fn bounded_fairness(&self) -> Option<u64> {
        if self.num_philosophers == 0 {
            return Some(0);
        }
        let mut last_seen: Vec<Option<u64>> = vec![None; self.num_philosophers];
        let mut max_gap: u64 = 0;
        for r in &self.records {
            let idx = r.philosopher.index();
            let gap = match last_seen[idx] {
                Some(prev) => r.step - prev,
                None => r.step + 1,
            };
            max_gap = max_gap.max(gap);
            last_seen[idx] = Some(r.step);
        }
        if last_seen.iter().any(Option::is_none) {
            return None;
        }
        Some(max_gap.max(1))
    }

    /// The scheduling gap (in steps) between consecutive schedulings of
    /// `philosopher`, including the gap from step 0 to its first scheduling.
    #[must_use]
    pub fn scheduling_gaps(&self, philosopher: PhilosopherId) -> Vec<u64> {
        let mut gaps = Vec::new();
        let mut last: Option<u64> = None;
        for r in &self.records {
            if r.philosopher == philosopher {
                let gap = match last {
                    Some(prev) => r.step - prev,
                    None => r.step + 1,
                };
                gaps.push(gap);
                last = Some(r.step);
            }
        }
        gaps
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a StepRecord;
    type IntoIter = std::slice::Iter<'a, StepRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_topology::ForkId;

    fn p(i: u32) -> PhilosopherId {
        PhilosopherId::new(i)
    }

    fn record(step: u64, phil: u32, action: Action, phase: Phase) -> StepRecord {
        StepRecord {
            step,
            philosopher: p(phil),
            action,
            phase_after: phase,
        }
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new(2);
        t.push(record(0, 0, Action::BecomeHungry, Phase::Hungry));
        t.push(record(1, 1, Action::BecomeHungry, Phase::Hungry));
        t.push(record(
            2,
            0,
            Action::TakeFirst {
                fork: ForkId::new(0),
                success: true,
            },
            Phase::Hungry,
        ));
        t.push(record(
            3,
            0,
            Action::TakeSecond {
                fork: ForkId::new(1),
                success: true,
            },
            Phase::Hungry,
        ));
        t.push(record(4, 0, Action::StartEating, Phase::Eating));
        t.push(record(5, 0, Action::FinishEating, Phase::Thinking));
        t
    }

    #[test]
    fn meals_are_extracted() {
        let t = sample_trace();
        assert_eq!(t.meals_started(), vec![(4, p(0))]);
        assert_eq!(t.meals_finished(), vec![(5, p(0))]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn scheduling_counts_and_gaps() {
        let t = sample_trace();
        assert_eq!(t.scheduling_counts(), vec![5, 1]);
        assert_eq!(t.scheduling_gaps(p(0)), vec![1, 2, 1, 1, 1]);
        assert_eq!(t.scheduling_gaps(p(1)), vec![2]);
    }

    #[test]
    fn bounded_fairness_of_sample() {
        let t = sample_trace();
        // P1 is scheduled only at step 1, so the largest gap is from step 1 to
        // the end... the bound only accounts for observed gaps; the sample is
        // certified with the max observed gap (P0 waited 2, P1 waited 2).
        assert_eq!(t.bounded_fairness(), Some(2));
    }

    #[test]
    fn bounded_fairness_requires_everyone_scheduled() {
        let mut t = Trace::new(3);
        t.push(record(0, 0, Action::Wait, Phase::Thinking));
        t.push(record(1, 1, Action::Wait, Phase::Thinking));
        // Philosopher 2 never scheduled.
        assert_eq!(t.bounded_fairness(), None);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new(2);
        assert!(t.is_empty());
        assert_eq!(t.meals_started(), vec![]);
        assert_eq!(t.bounded_fairness(), None);
        let t = Trace::new(0);
        assert_eq!(t.bounded_fairness(), Some(0));
    }

    #[test]
    fn into_iterator_yields_records_in_order() {
        let t = sample_trace();
        let steps: Vec<u64> = (&t).into_iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3, 4, 5]);
    }
}
