//! Stop conditions and run outcomes.

use gdp_topology::PhilosopherId;

/// When should [`Engine::run`](crate::Engine::run) stop?
///
/// Every condition carries a step budget: simulations are finite
/// approximations of the paper's infinite computations, and the analysis
/// crate interprets "budget exhausted without the target event" as evidence
/// of (or an upper bound on the probability of) a no-progress computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StopCondition {
    /// Run exactly this many steps (or until the schedule is exhausted).
    MaxSteps(u64),
    /// Stop as soon as *some* philosopher starts eating (the progress event
    /// of Theorem 3), or after `max_steps`.
    FirstMeal {
        /// Step budget.
        max_steps: u64,
    },
    /// Stop once the total number of completed meals reaches `target`, or
    /// after `max_steps`.
    TotalMeals {
        /// Required number of completed meals.
        target: u64,
        /// Step budget.
        max_steps: u64,
    },
    /// Stop once the given philosopher has completed a meal (the
    /// lockout-freedom event of Theorem 4), or after `max_steps`.
    PhilosopherEats {
        /// The philosopher that must eat.
        philosopher: PhilosopherId,
        /// Step budget.
        max_steps: u64,
    },
    /// Stop once *every* philosopher has completed at least `times` meals,
    /// or after `max_steps`.
    EveryoneEats {
        /// Required number of meals per philosopher.
        times: u64,
        /// Step budget.
        max_steps: u64,
    },
}

impl StopCondition {
    /// The step budget of this condition.
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        match *self {
            StopCondition::MaxSteps(s) => s,
            StopCondition::FirstMeal { max_steps }
            | StopCondition::TotalMeals { max_steps, .. }
            | StopCondition::PhilosopherEats { max_steps, .. }
            | StopCondition::EveryoneEats { max_steps, .. } => max_steps,
        }
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The target event of the [`StopCondition`] occurred.
    TargetReached,
    /// The step budget was exhausted before the target event.
    StepLimitReached,
}

impl StopReason {
    /// Returns `true` if the target event occurred.
    #[must_use]
    pub fn target_reached(self) -> bool {
        matches!(self, StopReason::TargetReached)
    }
}

/// Summary of one finished run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Number of atomic steps executed.
    pub steps: u64,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Total completed meals across all philosophers.
    pub total_meals: u64,
    /// Completed meals per philosopher, indexed by philosopher index.
    pub meals_per_philosopher: Vec<u64>,
    /// Step at which the first meal *started*, if any (the progress event).
    pub first_meal_step: Option<u64>,
    /// Step at which each philosopher first *finished* a meal, if it did.
    pub first_meal_per_philosopher: Vec<Option<u64>>,
    /// How many times each philosopher was scheduled.
    pub scheduled_per_philosopher: Vec<u64>,
    /// The bounded-fairness bound observed in this run, if every philosopher
    /// was scheduled at least once (see
    /// [`Trace::bounded_fairness`](crate::Trace::bounded_fairness)).
    pub fairness_bound: Option<u64>,
}

impl RunOutcome {
    /// Returns `true` if at least one philosopher started eating.
    #[must_use]
    pub fn made_progress(&self) -> bool {
        self.first_meal_step.is_some()
    }

    /// Returns `true` if every philosopher completed at least one meal.
    #[must_use]
    pub fn everyone_ate(&self) -> bool {
        self.meals_per_philosopher.iter().all(|&m| m > 0)
    }

    /// The set of philosophers that never completed a meal (starved within
    /// the step budget).
    #[must_use]
    pub fn starved(&self) -> Vec<PhilosopherId> {
        self.meals_per_philosopher
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == 0)
            .map(|(i, _)| PhilosopherId::new(i as u32))
            .collect()
    }

    /// Meals completed per 1000 steps — a throughput figure used by the
    /// benchmark harness.
    #[must_use]
    pub fn throughput_per_kstep(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_meals as f64 * 1000.0 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> RunOutcome {
        RunOutcome {
            steps: 2000,
            reason: StopReason::TargetReached,
            total_meals: 10,
            meals_per_philosopher: vec![4, 6, 0],
            first_meal_step: Some(17),
            first_meal_per_philosopher: vec![Some(20), Some(17), None],
            scheduled_per_philosopher: vec![700, 700, 600],
            fairness_bound: Some(5),
        }
    }

    #[test]
    fn stop_condition_budget() {
        assert_eq!(StopCondition::MaxSteps(10).max_steps(), 10);
        assert_eq!(StopCondition::FirstMeal { max_steps: 7 }.max_steps(), 7);
        assert_eq!(
            StopCondition::TotalMeals {
                target: 3,
                max_steps: 9
            }
            .max_steps(),
            9
        );
        assert_eq!(
            StopCondition::PhilosopherEats {
                philosopher: PhilosopherId::new(0),
                max_steps: 11
            }
            .max_steps(),
            11
        );
        assert_eq!(
            StopCondition::EveryoneEats {
                times: 1,
                max_steps: 13
            }
            .max_steps(),
            13
        );
    }

    #[test]
    fn outcome_predicates() {
        let o = outcome();
        assert!(o.made_progress());
        assert!(!o.everyone_ate());
        assert_eq!(o.starved(), vec![PhilosopherId::new(2)]);
        assert!((o.throughput_per_kstep() - 5.0).abs() < 1e-9);
        assert!(o.reason.target_reached());
    }

    #[test]
    fn zero_step_throughput_is_zero() {
        let mut o = outcome();
        o.steps = 0;
        assert_eq!(o.throughput_per_kstep(), 0.0);
    }

    #[test]
    fn step_limit_reason() {
        assert!(!StopReason::StepLimitReached.target_reached());
    }
}
