//! Hunger models: when does a thinking philosopher become hungry?
//!
//! In the paper the `think` action "may not terminate" — whether and when a
//! philosopher becomes hungry is outside the algorithm's control.  The
//! engine therefore consults a [`HungerModel`] whenever a *thinking*
//! philosopher is scheduled.  The maximally-contended regime used in the
//! paper's arguments (everybody wants to eat) is [`HungerModel::Always`].

use rand::Rng;

/// Policy deciding whether a scheduled, thinking philosopher becomes hungry.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum HungerModel {
    /// A thinking philosopher becomes hungry the first time it is scheduled.
    /// This is the maximally contended workload used throughout the paper's
    /// negative and positive arguments.
    #[default]
    Always,
    /// Philosophers never become hungry (useful for tests of the engine
    /// itself and for "cold" baseline measurements).
    Never,
    /// A thinking philosopher becomes hungry with the given probability each
    /// time it is scheduled (a light or bursty workload).
    Bernoulli(f64),
}

impl HungerModel {
    /// Samples the model: should a thinking philosopher scheduled now become
    /// hungry?
    ///
    /// # Panics
    ///
    /// Panics if a [`HungerModel::Bernoulli`] probability is not within
    /// `[0, 1]` (validated here rather than at construction so the enum can
    /// stay a plain data carrier).
    pub fn becomes_hungry<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        match self.resolve() {
            Ok(deterministic) => deterministic,
            Err(p) => rng.gen_bool(p),
        }
    }

    /// Resolves the model to either a deterministic answer (`Ok`) or the
    /// probability of a hunger coin that still needs to be flipped (`Err`).
    ///
    /// This is the branching structure exact model checking needs: `Always`
    /// and `Never` contribute no probabilistic branch, `Bernoulli` forks on
    /// one coin.
    ///
    /// # Panics
    ///
    /// Panics if a [`HungerModel::Bernoulli`] probability is not within
    /// `[0, 1]` (validated here rather than at construction so the enum can
    /// stay a plain data carrier).
    pub(crate) fn resolve(&self) -> Result<bool, f64> {
        match *self {
            HungerModel::Always => Ok(true),
            HungerModel::Never => Ok(false),
            HungerModel::Bernoulli(p) => {
                assert!(
                    (0.0..=1.0).contains(&p),
                    "hunger probability must be in [0, 1], got {p}"
                );
                Err(p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn always_and_never_are_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(HungerModel::Always.becomes_hungry(&mut rng));
            assert!(!HungerModel::Never.becomes_hungry(&mut rng));
        }
    }

    #[test]
    fn bernoulli_matches_probability_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| HungerModel::Bernoulli(0.25).becomes_hungry(&mut rng))
            .count();
        let freq = hits as f64 / trials as f64;
        assert!(
            (freq - 0.25).abs() < 0.02,
            "frequency {freq} too far from 0.25"
        );
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(!HungerModel::Bernoulli(0.0).becomes_hungry(&mut rng));
        assert!(HungerModel::Bernoulli(1.0).becomes_hungry(&mut rng));
    }

    #[test]
    #[should_panic(expected = "hunger probability")]
    fn bernoulli_rejects_out_of_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = HungerModel::Bernoulli(1.5).becomes_hungry(&mut rng);
    }

    #[test]
    fn default_is_always() {
        assert_eq!(HungerModel::default(), HungerModel::Always);
    }
}
