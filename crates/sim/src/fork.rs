//! The shared state of one fork.
//!
//! The paper's *full distribution* requirement says that "the only shared
//! variables are the forks".  Everything an algorithm shares therefore lives
//! in [`ForkCell`]:
//!
//! * the **holder** — which philosopher (if any) currently holds the fork;
//! * the **`nr` priority number** used by GDP1/GDP2 (Section 4), initially 0
//!   for every fork so that all forks start in the same state (symmetry);
//! * the **request list `r`** and **guest book `g`** used by LR2 and GDP2
//!   (Sections 3.2 and 5).
//!
//! The engine guarantees that each [`Program::step`](crate::Program::step)
//! call — and hence each sequence of `ForkCell` operations performed inside
//! it — is executed atomically with respect to the scheduler, which is the
//! paper's atomic test-and-set assumption.

use gdp_topology::PhilosopherId;

/// A monotonically increasing per-fork usage counter.
///
/// The guest book records, for each philosopher, the stamp of its most
/// recent meal that used this fork.  Stamps are only ever compared between
/// philosophers sharing the same fork, so a per-fork counter suffices and no
/// global clock is introduced (preserving full distribution).
pub type UsageStamp = u64;

/// The complete shared state of a single fork.
///
/// All fields are private; the atomic-step operations below are the only way
/// to read or modify them, mirroring the paper's "test-and-set operations on
/// the forks are performed atomically".
#[derive(Debug, Default, PartialEq, Eq, Hash)]
pub struct ForkCell {
    holder: Option<PhilosopherId>,
    nr: u32,
    /// Incoming requests, in insertion order (LR2 / GDP2 line 2).
    requests: Vec<PhilosopherId>,
    /// Guest book: who has used this fork and at which usage stamp.
    guest_book: Vec<(PhilosopherId, UsageStamp)>,
    /// Next usage stamp to hand out when somebody signs the guest book.
    next_stamp: UsageStamp,
}

// Manual impl so `clone_from` reuses the request-list and guest-book
// allocations: [`Engine::restore`](crate::Engine::restore) clones fork
// cells on the state-space exploration hot path, where the derived
// fallback (`*self = source.clone()`) would reallocate both vectors per
// fork per restore.
impl Clone for ForkCell {
    fn clone(&self) -> Self {
        ForkCell {
            holder: self.holder,
            nr: self.nr,
            requests: self.requests.clone(),
            guest_book: self.guest_book.clone(),
            next_stamp: self.next_stamp,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.holder = source.holder;
        self.nr = source.nr;
        self.requests.clone_from(&source.requests);
        self.guest_book.clone_from(&source.guest_book);
        self.next_stamp = source.next_stamp;
    }
}

impl ForkCell {
    /// A fresh fork: free, `nr == 0`, empty request list and guest book.
    ///
    /// Every fork starts in this same state, as required by the symmetry
    /// condition of the problem.
    #[must_use]
    pub fn new() -> Self {
        ForkCell::default()
    }

    /// Returns `true` if no philosopher currently holds this fork.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.holder.is_none()
    }

    /// The philosopher currently holding the fork, if any.
    #[must_use]
    pub fn holder(&self) -> Option<PhilosopherId> {
        self.holder
    }

    /// Atomic test-and-set: if the fork is free, `philosopher` takes it and
    /// the call returns `true`; otherwise the fork is unchanged and the call
    /// returns `false`.
    pub fn take_if_free(&mut self, philosopher: PhilosopherId) -> bool {
        if self.holder.is_none() {
            self.holder = Some(philosopher);
            true
        } else {
            false
        }
    }

    /// Releases the fork if `philosopher` holds it; returns `true` if a
    /// release actually happened.
    ///
    /// Releasing a fork held by somebody else is a programming error in an
    /// algorithm; it is reported as `false` rather than panicking so that the
    /// engine can surface it in traces.
    pub fn release(&mut self, philosopher: PhilosopherId) -> bool {
        if self.holder == Some(philosopher) {
            self.holder = None;
            true
        } else {
            false
        }
    }

    /// The fork's current priority number `nr` (Section 4 of the paper).
    #[must_use]
    pub fn nr(&self) -> u32 {
        self.nr
    }

    /// Sets the fork's priority number.  In GDP1/GDP2 only the philosopher
    /// currently holding the fork does this (Table 3 line 4 / Table 4 line 5).
    pub fn set_nr(&mut self, value: u32) {
        self.nr = value;
    }

    /// Inserts `philosopher` into the request list (LR2/GDP2: `insert(id, fork.r)`).
    ///
    /// Duplicate insertions are ignored, so the operation is idempotent.
    pub fn insert_request(&mut self, philosopher: PhilosopherId) {
        if !self.requests.contains(&philosopher) {
            self.requests.push(philosopher);
        }
    }

    /// Removes `philosopher` from the request list (LR2/GDP2: `remove(id, fork.r)`).
    pub fn remove_request(&mut self, philosopher: PhilosopherId) {
        self.requests.retain(|&p| p != philosopher);
    }

    /// The current request list, in insertion order.
    #[must_use]
    pub fn requests(&self) -> &[PhilosopherId] {
        &self.requests
    }

    /// Returns `true` if the request list is empty.
    #[must_use]
    pub fn requests_is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Signs the guest book for `philosopher` (LR2/GDP2: `insert(id, fork.g)`),
    /// recording that it has just eaten using this fork.  Returns the stamp.
    pub fn sign_guest_book(&mut self, philosopher: PhilosopherId) -> UsageStamp {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(entry) = self.guest_book.iter_mut().find(|(p, _)| *p == philosopher) {
            entry.1 = stamp;
        } else {
            self.guest_book.push((philosopher, stamp));
        }
        stamp
    }

    /// The usage stamp of `philosopher`'s most recent meal with this fork, or
    /// `None` if it has never eaten with it.
    #[must_use]
    pub fn last_use(&self, philosopher: PhilosopherId) -> Option<UsageStamp> {
        self.guest_book
            .iter()
            .find(|(p, _)| *p == philosopher)
            .map(|&(_, stamp)| stamp)
    }

    /// Returns `true` if the guest book is empty (nobody has ever eaten with
    /// this fork).  Theorem 2's proof observes that on the defeated
    /// computation `fork.g` remains forever empty; the analysis crate checks
    /// exactly this.
    #[must_use]
    pub fn guest_book_is_empty(&self) -> bool {
        self.guest_book.is_empty()
    }

    /// Number of distinct philosophers that have signed the guest book.
    #[must_use]
    pub fn guest_book_len(&self) -> usize {
        self.guest_book.len()
    }

    /// The courtesy condition `Cond(fork)` of LR2 and GDP2 for `philosopher`.
    ///
    /// The paper states it as: *"there are no other incoming requests for
    /// that fork, or the other philosophers requesting the fork have used it
    /// after he did"*.  We implement it as: for every **other** requesting
    /// philosopher `q`, `q`'s last use of the fork is **not older** than
    /// `philosopher`'s last use, treating "never used" as older than any use.
    /// Consequences:
    ///
    /// * initially (nobody has eaten) the condition holds for everybody, so
    ///   the system can start;
    /// * once `philosopher` has eaten with the fork, it may not take it again
    ///   while a neighbour that has not eaten since is requesting it — this
    ///   is precisely the courtesy that makes GDP2 lockout-free (Theorem 4).
    #[must_use]
    pub fn courtesy_holds(&self, philosopher: PhilosopherId) -> bool {
        let mine = self.last_use(philosopher);
        self.requests
            .iter()
            .filter(|&&q| q != philosopher)
            .all(|&q| {
                let theirs = self.last_use(q);
                match (mine, theirs) {
                    // I never ate: I am owed the fork at least as much as anyone.
                    (None, _) => true,
                    // I ate, they never did: defer to them.
                    (Some(_), None) => false,
                    // Both ate: they must have eaten after me.
                    (Some(m), Some(t)) => t > m,
                }
            })
    }

    /// Resets the fork to its initial state.  Used by the engine when reusing
    /// allocations across trials.
    pub fn reset(&mut self) {
        *self = ForkCell::default();
    }

    /// Writes into `out` a copy of this cell with every stored philosopher
    /// identifier relabelled through `map`, preserving request-list and
    /// guest-book order (and all stamps).
    ///
    /// This is the fork half of the canonical state encoding used by the
    /// symmetry reduction in `gdp-mcheck`: applying a topology automorphism
    /// to a system state relabels the philosophers referenced by each fork
    /// cell while leaving everything else untouched.  Reuses `out`'s
    /// allocations.
    pub fn relabel_philosophers_into(
        &self,
        map: impl Fn(PhilosopherId) -> PhilosopherId,
        out: &mut ForkCell,
    ) {
        out.holder = self.holder.map(&map);
        out.nr = self.nr;
        out.requests.clear();
        out.requests.extend(self.requests.iter().map(|&p| map(p)));
        out.guest_book.clear();
        out.guest_book
            .extend(self.guest_book.iter().map(|&(p, stamp)| (map(p), stamp)));
        out.next_stamp = self.next_stamp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PhilosopherId {
        PhilosopherId::new(i)
    }

    #[test]
    fn new_fork_is_free_with_zero_nr() {
        let fork = ForkCell::new();
        assert!(fork.is_free());
        assert_eq!(fork.holder(), None);
        assert_eq!(fork.nr(), 0);
        assert!(fork.requests_is_empty());
        assert!(fork.guest_book_is_empty());
    }

    #[test]
    fn take_if_free_is_atomic_test_and_set() {
        let mut fork = ForkCell::new();
        assert!(fork.take_if_free(p(0)));
        assert!(!fork.is_free());
        assert_eq!(fork.holder(), Some(p(0)));
        // A second take fails and does not change the holder.
        assert!(!fork.take_if_free(p(1)));
        assert_eq!(fork.holder(), Some(p(0)));
    }

    #[test]
    fn release_only_by_holder() {
        let mut fork = ForkCell::new();
        fork.take_if_free(p(0));
        assert!(!fork.release(p(1)), "non-holder cannot release");
        assert_eq!(fork.holder(), Some(p(0)));
        assert!(fork.release(p(0)));
        assert!(fork.is_free());
        assert!(!fork.release(p(0)), "double release reports false");
    }

    #[test]
    fn nr_roundtrip() {
        let mut fork = ForkCell::new();
        fork.set_nr(42);
        assert_eq!(fork.nr(), 42);
    }

    #[test]
    fn request_list_is_idempotent_and_ordered() {
        let mut fork = ForkCell::new();
        fork.insert_request(p(3));
        fork.insert_request(p(1));
        fork.insert_request(p(3));
        assert_eq!(fork.requests(), &[p(3), p(1)]);
        fork.remove_request(p(3));
        assert_eq!(fork.requests(), &[p(1)]);
        fork.remove_request(p(9)); // removing a non-requester is a no-op
        assert_eq!(fork.requests(), &[p(1)]);
    }

    #[test]
    fn guest_book_records_latest_stamp() {
        let mut fork = ForkCell::new();
        assert_eq!(fork.last_use(p(0)), None);
        let s0 = fork.sign_guest_book(p(0));
        let s1 = fork.sign_guest_book(p(1));
        let s2 = fork.sign_guest_book(p(0));
        assert!(s0 < s1 && s1 < s2);
        assert_eq!(fork.last_use(p(0)), Some(s2));
        assert_eq!(fork.last_use(p(1)), Some(s1));
        assert_eq!(fork.guest_book_len(), 2);
    }

    #[test]
    fn courtesy_initially_holds_for_everyone() {
        let mut fork = ForkCell::new();
        fork.insert_request(p(0));
        fork.insert_request(p(1));
        assert!(fork.courtesy_holds(p(0)));
        assert!(fork.courtesy_holds(p(1)));
    }

    #[test]
    fn courtesy_defers_to_hungrier_neighbour() {
        let mut fork = ForkCell::new();
        fork.insert_request(p(0));
        fork.insert_request(p(1));
        // P0 eats; P1 has not eaten yet.
        fork.sign_guest_book(p(0));
        assert!(!fork.courtesy_holds(p(0)), "P0 must now defer to P1");
        assert!(fork.courtesy_holds(p(1)), "P1 is owed the fork");
        // P1 eats; both have eaten once, P1 more recently.
        fork.sign_guest_book(p(1));
        assert!(
            fork.courtesy_holds(p(0)),
            "P1 ate after P0, so P0 may go again"
        );
        assert!(!fork.courtesy_holds(p(1)));
    }

    #[test]
    fn courtesy_with_no_other_requests_always_holds() {
        let mut fork = ForkCell::new();
        fork.insert_request(p(0));
        fork.sign_guest_book(p(0));
        assert!(fork.courtesy_holds(p(0)));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut fork = ForkCell::new();
        fork.take_if_free(p(0));
        fork.set_nr(7);
        fork.insert_request(p(1));
        fork.sign_guest_book(p(1));
        fork.reset();
        assert_eq!(fork, ForkCell::new());
    }

    #[test]
    fn fork_cell_is_hashable_for_state_space_exploration() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let mut a = ForkCell::new();
        set.insert(a.clone());
        a.set_nr(1);
        set.insert(a.clone());
        a.take_if_free(p(0));
        set.insert(a);
        assert_eq!(set.len(), 3);
    }
}
