//! The adversary's full-information view of the system.
//!
//! The paper assumes the adversary "has complete information of the past of
//! the computation, and can decide its next step on the basis of that
//! information".  [`SystemView`] exposes exactly the information an
//! adversary may use: the topology, the global step count, every fork's
//! shared state, and every philosopher's observable state (phase, held
//! forks, current commitment, scheduling and meal counters).
//!
//! What the adversary can *not* see is the outcome of random draws that have
//! not happened yet — randomness is resolved inside the philosopher's step,
//! after the adversary has committed to scheduling it.
//!
//! ## Zero-allocation views
//!
//! Views sit on the simulator's hottest path: the engine consults the
//! adversary before *every* atomic step.  Two design decisions keep that
//! path allocation-free:
//!
//! * [`PhilosopherView`] stores the held forks in [`Holding`], a fixed
//!   two-slot inline array (a philosopher is an *arc* of the conflict
//!   multigraph, so it is adjacent to exactly two forks and can never hold
//!   more) instead of a heap `Vec`;
//! * the engine maintains one persistent `Vec<PhilosopherView>` that is
//!   updated **incrementally** — an atomic step can only change the stepped
//!   philosopher's own observable state, so only that one view is refreshed
//!   — rather than rebuilding every view before every adversary decision.

use crate::fork::ForkCell;
use crate::program::{Phase, ProgramObservation};
use gdp_topology::{ForkId, PhilosopherId, Topology};
use std::ops::Deref;

/// The set of forks a philosopher currently holds, stored inline.
///
/// Capacity is exactly two because every philosopher is adjacent to exactly
/// two forks (an arc of the conflict multigraph); no heap allocation is ever
/// performed.  `Holding` dereferences to a `&[ForkId]` slice, so all the
/// usual slice queries (`len`, `is_empty`, `contains`, `first`, indexing,
/// iteration) work unchanged.
///
/// ```
/// use gdp_sim::Holding;
/// use gdp_topology::ForkId;
///
/// let mut holding = Holding::new();
/// assert!(holding.is_empty());
/// holding.push(ForkId::new(3));
/// assert_eq!(holding.len(), 1);
/// assert_eq!(holding[0], ForkId::new(3));
/// assert!(holding.contains(&ForkId::new(3)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Holding {
    forks: [ForkId; 2],
    len: u8,
}

impl Holding {
    /// An empty holding set.
    #[must_use]
    pub const fn new() -> Self {
        Holding {
            forks: [ForkId::new(0), ForkId::new(0)],
            len: 0,
        }
    }

    /// Adds `fork` to the set.
    ///
    /// # Panics
    ///
    /// Panics if two forks are already held — a philosopher has only two
    /// adjacent forks, so a third push indicates an engine bug.
    pub fn push(&mut self, fork: ForkId) {
        assert!(
            self.len < 2,
            "a philosopher holds at most two forks (attempted to add {fork})"
        );
        self.forks[self.len as usize] = fork;
        self.len += 1;
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The held forks as a slice, in acquisition-scan order.
    #[must_use]
    pub fn as_slice(&self) -> &[ForkId] {
        &self.forks[..self.len as usize]
    }
}

impl Default for Holding {
    fn default() -> Self {
        Holding::new()
    }
}

impl Deref for Holding {
    type Target = [ForkId];

    fn deref(&self) -> &[ForkId] {
        self.as_slice()
    }
}

impl PartialEq for Holding {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Holding {}

impl FromIterator<ForkId> for Holding {
    fn from_iter<I: IntoIterator<Item = ForkId>>(iter: I) -> Self {
        let mut holding = Holding::new();
        for fork in iter {
            holding.push(fork);
        }
        holding
    }
}

impl<'a> IntoIterator for &'a Holding {
    type Item = &'a ForkId;
    type IntoIter = std::slice::Iter<'a, ForkId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Observable state of one philosopher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhilosopherView {
    /// The philosopher this view describes.
    pub id: PhilosopherId,
    /// Coarse phase (thinking / hungry / eating).
    pub phase: Phase,
    /// The fork the philosopher is committed to taking first (the "empty
    /// arrow" of the paper's figures), if any.
    pub committed: Option<ForkId>,
    /// Program-counter label reported by the algorithm, e.g. `"LR1.3"`.
    pub label: &'static str,
    /// The forks currently held by this philosopher (the "filled arrows").
    pub holding: Holding,
    /// How many meals this philosopher has completed.
    pub meals: u64,
    /// How many times this philosopher has been scheduled.
    pub scheduled: u64,
    /// Step at which the philosopher last became hungry, if currently hungry
    /// or eating.
    pub hungry_since: Option<u64>,
}

impl PhilosopherView {
    /// Returns `true` if the philosopher currently holds `fork`.
    #[must_use]
    pub fn holds(&self, fork: ForkId) -> bool {
        self.holding.contains(&fork)
    }

    /// Returns `true` if the philosopher is committed to `fork` but does not
    /// hold it yet (the empty arrow of the paper's figures).
    #[must_use]
    pub fn committed_to(&self, fork: ForkId) -> bool {
        self.committed == Some(fork) && !self.holds(fork)
    }
}

/// Full-information snapshot handed to [`Adversary::select`](crate::Adversary::select).
#[derive(Debug)]
pub struct SystemView<'a> {
    topology: &'a Topology,
    step: u64,
    program_name: &'static str,
    forks: &'a [ForkCell],
    philosophers: &'a [PhilosopherView],
}

impl<'a> SystemView<'a> {
    pub(crate) fn new(
        topology: &'a Topology,
        step: u64,
        program_name: &'static str,
        forks: &'a [ForkCell],
        philosophers: &'a [PhilosopherView],
    ) -> Self {
        SystemView {
            topology,
            step,
            program_name,
            forks,
            philosophers,
        }
    }

    /// The conflict topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The number of atomic steps executed so far.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The name of the algorithm being executed (e.g. `"LR1"`).
    #[must_use]
    pub fn program_name(&self) -> &'static str {
        self.program_name
    }

    /// Shared state of `fork`.
    ///
    /// # Panics
    ///
    /// Panics if `fork` is out of range for the topology.
    #[must_use]
    pub fn fork(&self, fork: ForkId) -> &ForkCell {
        &self.forks[fork.index()]
    }

    /// Shared state of every fork, indexed by [`ForkId::index`].
    #[must_use]
    pub fn forks(&self) -> &[ForkCell] {
        self.forks
    }

    /// Observable state of `philosopher`.
    ///
    /// # Panics
    ///
    /// Panics if `philosopher` is out of range for the topology.
    #[must_use]
    pub fn philosopher(&self, philosopher: PhilosopherId) -> &PhilosopherView {
        &self.philosophers[philosopher.index()]
    }

    /// Observable state of every philosopher, indexed by
    /// [`PhilosopherId::index`].
    #[must_use]
    pub fn philosophers(&self) -> &[PhilosopherView] {
        self.philosophers
    }

    /// Number of philosophers in the system.
    #[must_use]
    pub fn num_philosophers(&self) -> usize {
        self.philosophers.len()
    }

    /// The philosophers currently in the given phase.
    #[must_use]
    pub fn in_phase(&self, phase: Phase) -> Vec<PhilosopherId> {
        self.philosophers
            .iter()
            .filter(|p| p.phase == phase)
            .map(|p| p.id)
            .collect()
    }

    /// Returns `true` if some philosopher is currently eating.
    #[must_use]
    pub fn someone_eating(&self) -> bool {
        self.philosophers.iter().any(|p| p.phase == Phase::Eating)
    }

    /// The philosopher currently holding `fork`, if any (derived from the
    /// fork cell, so it is consistent with the shared state).
    #[must_use]
    pub fn holder_of(&self, fork: ForkId) -> Option<PhilosopherId> {
        self.forks[fork.index()].holder()
    }

    /// Total meals completed so far across all philosophers.
    #[must_use]
    pub fn total_meals(&self) -> u64 {
        self.philosophers.iter().map(|p| p.meals).sum()
    }

    /// The longest-waiting philosopher among those that satisfy `keep`:
    /// smallest [`hungry_since`](PhilosopherView::hungry_since) stamp, ties
    /// broken by identifier.  Eating philosophers keep their stamp until
    /// the meal completes, so they rank with the same priority and finish
    /// (releasing their forks) under waiting-order service.
    ///
    /// This is the primitive behind *adaptive* schedulers — the
    /// `gdp-adversary` catalog's max-wait family is
    /// `longest_waiting_where(enabled)` plus a least-scheduled fallback.
    ///
    /// ```
    /// use gdp_algorithms::Gdp1;
    /// use gdp_sim::{Engine, SimConfig, StopCondition, RoundRobinAdversary};
    /// use gdp_topology::builders::classic_ring;
    ///
    /// let mut engine = Engine::new(classic_ring(4).unwrap(), Gdp1::new(), SimConfig::default());
    /// engine.run(&mut RoundRobinAdversary::new(), StopCondition::MaxSteps(50));
    /// engine.with_view(|view| {
    ///     if let Some(p) = view.longest_waiting_where(|_| true) {
    ///         let since = view.philosopher(p).hungry_since.expect("waiting implies a stamp");
    ///         assert!(since <= view.step());
    ///     }
    /// });
    /// ```
    #[must_use]
    pub fn longest_waiting_where(
        &self,
        mut keep: impl FnMut(&PhilosopherView) -> bool,
    ) -> Option<PhilosopherId> {
        self.philosophers
            .iter()
            .filter(|p| p.hungry_since.is_some() && keep(p))
            .min_by_key(|p| (p.hungry_since, p.id))
            .map(|p| p.id)
    }

    /// The philosopher scheduled the fewest times so far (ties broken by
    /// identifier) — the standard deterministic fallback tier of the
    /// catalog's adaptive schedulers.
    #[must_use]
    pub fn least_scheduled(&self) -> PhilosopherId {
        self.philosophers
            .iter()
            .min_by_key(|p| (p.scheduled, p.id))
            .map(|p| p.id)
            .expect("a system has at least one philosopher")
    }
}

pub(crate) fn make_view(
    id: PhilosopherId,
    observation: ProgramObservation,
    holding: Holding,
    meals: u64,
    scheduled: u64,
    hungry_since: Option<u64>,
) -> PhilosopherView {
    PhilosopherView {
        id,
        phase: observation.phase,
        committed: observation.committed,
        label: observation.label,
        holding,
        meals,
        scheduled,
        hungry_since,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_topology::builders::classic_ring;

    fn sample_philosophers() -> Vec<PhilosopherView> {
        vec![
            PhilosopherView {
                id: PhilosopherId::new(0),
                phase: Phase::Hungry,
                committed: Some(ForkId::new(0)),
                label: "test.3",
                holding: Holding::new(),
                meals: 0,
                scheduled: 2,
                hungry_since: Some(0),
            },
            PhilosopherView {
                id: PhilosopherId::new(1),
                phase: Phase::Eating,
                committed: None,
                label: "test.5",
                holding: [ForkId::new(1), ForkId::new(2)].into_iter().collect(),
                meals: 3,
                scheduled: 9,
                hungry_since: Some(4),
            },
            PhilosopherView {
                id: PhilosopherId::new(2),
                phase: Phase::Thinking,
                committed: None,
                label: "test.1",
                holding: Holding::new(),
                meals: 1,
                scheduled: 4,
                hungry_since: None,
            },
        ]
    }

    #[test]
    fn holding_is_a_bounded_inline_set() {
        let mut h = Holding::new();
        assert!(h.is_empty());
        assert_eq!(h.as_slice(), &[]);
        h.push(ForkId::new(7));
        h.push(ForkId::new(2));
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], ForkId::new(7));
        assert_eq!(h[1], ForkId::new(2));
        assert!(h.contains(&ForkId::new(2)));
        assert_eq!(h.first(), Some(&ForkId::new(7)));
        let collected: Vec<ForkId> = (&h).into_iter().copied().collect();
        assert_eq!(collected, vec![ForkId::new(7), ForkId::new(2)]);
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn holding_equality_ignores_stale_slots() {
        let mut a = Holding::new();
        a.push(ForkId::new(5));
        a.clear();
        let b = Holding::new();
        // `a` still has 5 in its backing array; equality must compare only
        // the live prefix.
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at most two forks")]
    fn holding_rejects_a_third_fork() {
        let mut h = Holding::new();
        h.push(ForkId::new(0));
        h.push(ForkId::new(1));
        h.push(ForkId::new(2));
    }

    #[test]
    fn philosopher_view_predicates() {
        let phils = sample_philosophers();
        assert!(phils[0].committed_to(ForkId::new(0)));
        assert!(!phils[0].holds(ForkId::new(0)));
        assert!(phils[1].holds(ForkId::new(2)));
        assert!(!phils[1].committed_to(ForkId::new(2)));
    }

    #[test]
    fn system_view_queries() {
        let topology = classic_ring(3).unwrap();
        let mut forks = vec![ForkCell::new(), ForkCell::new(), ForkCell::new()];
        forks[1].take_if_free(PhilosopherId::new(1));
        forks[2].take_if_free(PhilosopherId::new(1));
        let phils = sample_philosophers();
        let view = SystemView::new(&topology, 42, "test", &forks, &phils);

        assert_eq!(view.step(), 42);
        assert_eq!(view.program_name(), "test");
        assert_eq!(view.num_philosophers(), 3);
        assert!(view.someone_eating());
        assert_eq!(view.in_phase(Phase::Hungry), vec![PhilosopherId::new(0)]);
        assert_eq!(view.holder_of(ForkId::new(1)), Some(PhilosopherId::new(1)));
        assert_eq!(view.holder_of(ForkId::new(0)), None);
        assert_eq!(view.total_meals(), 4);
        assert_eq!(
            view.philosopher(PhilosopherId::new(2)).phase,
            Phase::Thinking
        );
        assert_eq!(view.forks().len(), 3);
        assert_eq!(view.topology().num_philosophers(), 3);
    }
}
