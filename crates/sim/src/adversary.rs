//! The adversary (scheduler) interface and the built-in fair schedulers.
//!
//! The adversary chooses which philosopher executes the next atomic step.
//! It has full information about the past (see [`SystemView`]) but cannot
//! predict or influence the philosophers' random draws.  The paper restricts
//! attention to **fair** adversaries: every philosopher must be scheduled
//! infinitely often in every infinite computation.
//!
//! This module provides the trait plus two simple, obviously fair
//! schedulers.  The crafted adversaries that defeat LR1/LR2 (Section 3,
//! Theorems 1 and 2 of the paper) live in the `gdp-adversary` crate.

use crate::view::SystemView;
use gdp_topology::PhilosopherId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A scheduler choosing the next philosopher to execute an atomic step.
pub trait Adversary {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Chooses the philosopher to schedule next, given full information about
    /// the computation so far.
    ///
    /// The returned identifier must be valid for the topology in `view`
    /// (i.e. `< view.num_philosophers()`); the engine panics otherwise, since
    /// a scheduler bug would silently invalidate an experiment.
    fn select(&mut self, view: &SystemView<'_>) -> PhilosopherId;

    /// Resets any internal state so the adversary can drive a fresh run.
    /// The default does nothing.
    fn reset(&mut self) {}

    /// Whether this adversary is fair by construction (every philosopher is
    /// scheduled infinitely often in any infinite run it produces).
    ///
    /// This is *metadata for reporting*: experiment harnesses print it, and
    /// the fairness of concrete finite runs is additionally verified from the
    /// trace via [`Trace::bounded_fairness`](crate::Trace::bounded_fairness).
    fn is_fair_by_construction(&self) -> bool {
        true
    }
}

impl<T: Adversary + ?Sized> Adversary for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn select(&mut self, view: &SystemView<'_>) -> PhilosopherId {
        (**self).select(view)
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn is_fair_by_construction(&self) -> bool {
        (**self).is_fair_by_construction()
    }
}

/// A round-robin scheduler: philosophers are scheduled cyclically
/// `P0, P1, ..., Pn-1, P0, ...`.  Trivially fair with bound `n`.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinAdversary {
    next: usize,
}

impl RoundRobinAdversary {
    /// Creates a round-robin scheduler starting from philosopher 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinAdversary { next: 0 }
    }
}

impl Adversary for RoundRobinAdversary {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn select(&mut self, view: &SystemView<'_>) -> PhilosopherId {
        let n = view.num_philosophers();
        let chosen = PhilosopherId::new((self.next % n) as u32);
        self.next = (self.next + 1) % n;
        chosen
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

/// A uniformly random scheduler: each step schedules a philosopher chosen
/// uniformly at random, independently of the past.
///
/// Such a scheduler is fair with probability 1; in a finite run of `T` steps
/// each philosopher is scheduled about `T / n` times.  The adversary's
/// randomness is seeded separately from the philosophers' randomness so the
/// two sources can be varied independently in experiments.
#[derive(Clone, Debug)]
pub struct UniformRandomAdversary {
    rng: ChaCha8Rng,
    seed: u64,
}

impl UniformRandomAdversary {
    /// Creates a random scheduler with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        UniformRandomAdversary {
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }
}

impl Adversary for UniformRandomAdversary {
    fn name(&self) -> &str {
        "uniform-random"
    }

    fn select(&mut self, view: &SystemView<'_>) -> PhilosopherId {
        let n = view.num_philosophers();
        PhilosopherId::new(self.rng.gen_range(0..n) as u32)
    }

    fn reset(&mut self) {
        self.rng = ChaCha8Rng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fork::ForkCell;
    use crate::program::Phase;
    use crate::view::{Holding, PhilosopherView};
    use gdp_topology::builders::classic_ring;
    use gdp_topology::Topology;

    fn dummy_philosophers(n: usize) -> Vec<PhilosopherView> {
        (0..n)
            .map(|i| PhilosopherView {
                id: PhilosopherId::new(i as u32),
                phase: Phase::Thinking,
                committed: None,
                label: "t",
                holding: Holding::new(),
                meals: 0,
                scheduled: 0,
                hungry_since: None,
            })
            .collect()
    }

    fn with_view<R>(topology: &Topology, f: impl FnOnce(&SystemView<'_>) -> R) -> R {
        let forks: Vec<ForkCell> = (0..topology.num_forks()).map(|_| ForkCell::new()).collect();
        let phils = dummy_philosophers(topology.num_philosophers());
        let view = SystemView::new(topology, 0, "test", &forks, &phils);
        f(&view)
    }

    #[test]
    fn round_robin_cycles_through_everyone() {
        let topology = classic_ring(4).unwrap();
        let mut adv = RoundRobinAdversary::new();
        let picks: Vec<u32> = (0..8)
            .map(|_| with_view(&topology, |v| adv.select(v)).raw())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        adv.reset();
        assert_eq!(with_view(&topology, |v| adv.select(v)).raw(), 0);
        assert!(adv.is_fair_by_construction());
        assert_eq!(adv.name(), "round-robin");
    }

    #[test]
    fn uniform_random_is_seeded_and_resettable() {
        let topology = classic_ring(5).unwrap();
        let mut a = UniformRandomAdversary::new(3);
        let mut b = UniformRandomAdversary::new(3);
        let pa: Vec<u32> = (0..20)
            .map(|_| with_view(&topology, |v| a.select(v)).raw())
            .collect();
        let pb: Vec<u32> = (0..20)
            .map(|_| with_view(&topology, |v| b.select(v)).raw())
            .collect();
        assert_eq!(pa, pb, "same seed, same schedule");
        a.reset();
        let pa2: Vec<u32> = (0..20)
            .map(|_| with_view(&topology, |v| a.select(v)).raw())
            .collect();
        assert_eq!(pa, pa2, "reset replays the schedule");
        assert!(pa.iter().all(|&i| i < 5));
    }

    #[test]
    fn uniform_random_covers_all_philosophers_eventually() {
        let topology = classic_ring(6).unwrap();
        let mut adv = UniformRandomAdversary::new(0);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let p = with_view(&topology, |v| adv.select(v));
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn boxed_adversary_delegates() {
        let topology = classic_ring(3).unwrap();
        let mut adv: Box<dyn Adversary> = Box::new(RoundRobinAdversary::new());
        assert_eq!(adv.name(), "round-robin");
        let p = with_view(&topology, |v| adv.select(v));
        assert_eq!(p, PhilosopherId::new(0));
        adv.reset();
        assert!(adv.is_fair_by_construction());
    }
}
