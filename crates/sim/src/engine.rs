//! The execution engine: adversary-driven interleaving of atomic steps.

use crate::adversary::Adversary;
use crate::config::SimConfig;
use crate::draws::DrawTape;
use crate::fork::ForkCell;
use crate::hash::fingerprint64;
use crate::outcome::{RunOutcome, StopCondition, StopReason};
use crate::program::{Action, Phase, Program, StepCtx, StepRandomness};
use crate::snapshot::EngineState;
use crate::trace::{StepRecord, Trace};
use crate::view::{make_view, Holding, PhilosopherView, SystemView};
use gdp_observe::{Event, Log2Histogram, SharedSink};
use gdp_topology::{ForkId, PhilosopherId, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic, seedable simulator of one generalized dining
/// philosophers system running one [`Program`] under one [`Adversary`].
///
/// The engine owns the shared fork state, every philosopher's private
/// program state and the philosophers' randomness.  Each call to
/// [`step_philosopher`](Engine::step_philosopher) executes one atomic step;
/// [`run`](Engine::run) drives a whole computation by repeatedly consulting
/// an adversary.
///
/// Determinism: two engines constructed with the same topology, program,
/// configuration (including seed) and driven by the same adversary produce
/// identical traces.  The regression tests of `gdp-algorithms` rely on this.
///
/// Performance: the engine keeps one persistent [`PhilosopherView`] buffer
/// that is updated *incrementally* — an atomic step can only change the
/// stepped philosopher's observable state (its phase, commitment and held
/// forks, all derived from its own private state and its own two fork
/// cells), so after each step exactly one view is refreshed in place.  The
/// hot path `step_with` → `with_view` → `step_philosopher` performs no heap
/// allocation; see `docs/PERFORMANCE.md`.
pub struct Engine<P: Program> {
    topology: Topology,
    program: P,
    config: SimConfig,
    nr_range: u32,
    forks: Vec<ForkCell>,
    states: Vec<P::State>,
    rng: ChaCha8Rng,
    step_count: u64,
    meals_completed: Vec<u64>,
    first_meal_finished: Vec<Option<u64>>,
    first_meal_started: Option<u64>,
    scheduled: Vec<u64>,
    last_scheduled: Vec<Option<u64>>,
    max_scheduling_gap: u64,
    hungry_since: Vec<Option<u64>>,
    waiting_times: Vec<Vec<u64>>,
    trace: Option<Trace>,
    /// Step at which each philosopher last *started* eating — feeds the
    /// inter-meal histogram.
    last_meal_start: Vec<Option<u64>>,
    /// Step-denominated time-to-first-meal per philosopher (one sample per
    /// philosopher that ever eats).
    first_meal_hist: Log2Histogram,
    /// Step-denominated gaps between consecutive meal starts of the same
    /// philosopher.
    inter_meal_hist: Log2Histogram,
    /// Optional structured-event sink (see `gdp-observe`).  `None` — the
    /// default — costs one branch per step; this is *not* captured by
    /// snapshots and survives `reset`/`restore`, like the trace config.
    sink: Option<SharedSink>,
    /// Persistent adversary-facing views, kept in sync incrementally:
    /// `views[i]` always equals the view rebuilt from scratch for
    /// philosopher `i` (test-enforced, see `rebuilt_views`).
    views: Vec<PhilosopherView>,
}

impl<P: Program> Engine<P> {
    /// Creates an engine for `topology` running `program` under `config`.
    pub fn new(topology: Topology, program: P, config: SimConfig) -> Self {
        let n = topology.num_philosophers();
        let k = topology.num_forks();
        let nr_range = config.effective_nr_range(k);
        let trace = config.record_trace.then(|| Trace::new(n));
        let mut engine = Engine {
            nr_range,
            forks: (0..k).map(|_| ForkCell::new()).collect(),
            states: (0..n).map(|_| program.initial_state()).collect(),
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            step_count: 0,
            meals_completed: vec![0; n],
            first_meal_finished: vec![None; n],
            first_meal_started: None,
            scheduled: vec![0; n],
            last_scheduled: vec![None; n],
            max_scheduling_gap: 0,
            hungry_since: vec![None; n],
            waiting_times: vec![Vec::new(); n],
            trace,
            last_meal_start: vec![None; n],
            first_meal_hist: Log2Histogram::new(),
            inter_meal_hist: Log2Histogram::new(),
            sink: None,
            views: Vec::with_capacity(n),
            topology,
            program,
            config,
        };
        for p in 0..n {
            let view = engine.compute_view(PhilosopherId::new(p as u32));
            engine.views.push(view);
        }
        engine
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The configuration of this engine.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of atomic steps executed so far.
    #[must_use]
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// The shared state of `fork`.
    #[must_use]
    pub fn fork(&self, fork: ForkId) -> &ForkCell {
        &self.forks[fork.index()]
    }

    /// The current phase of `philosopher`.
    #[must_use]
    pub fn phase_of(&self, philosopher: PhilosopherId) -> Phase {
        self.program
            .observation(
                &self.states[philosopher.index()],
                self.topology.forks_of(philosopher),
            )
            .phase
    }

    /// Completed meals of `philosopher`.
    #[must_use]
    pub fn meals_of(&self, philosopher: PhilosopherId) -> u64 {
        self.meals_completed[philosopher.index()]
    }

    /// Total completed meals.
    #[must_use]
    pub fn total_meals(&self) -> u64 {
        self.meals_completed.iter().sum()
    }

    /// Step at which the first meal started, if any.
    #[must_use]
    pub fn first_meal_step(&self) -> Option<u64> {
        self.first_meal_started
    }

    /// The recorded waiting times (steps from becoming hungry to starting to
    /// eat) of `philosopher`.
    #[must_use]
    pub fn waiting_times(&self, philosopher: PhilosopherId) -> &[u64] {
        &self.waiting_times[philosopher.index()]
    }

    /// The recorded trace, if trace recording was enabled in the config.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Attaches (or with `None`, detaches) a structured-event sink.
    ///
    /// While attached, every atomic step emits `gdp-observe` events keyed by
    /// the step index as the logical clock: a `Schedule` for the stepped
    /// philosopher plus `Acquire`/`Release`/`MealStart`/`MealFinish` derived
    /// from the step's [`Action`] (fork releases folded into `FinishEating`
    /// by an algorithm's action vocabulary are not synthesized).  Detached —
    /// the default — the cost is a single branch per step (bench-enforced by
    /// the `trace_overhead` sample).
    ///
    /// The sink is engine configuration, not semantic state: it survives
    /// [`reset`](Self::reset) and [`restore`](Self::restore), and snapshots
    /// never capture it.  Note that exploration entry points
    /// ([`for_each_step_outcome`](Self::for_each_step_outcome),
    /// [`is_stuck`](Self::is_stuck)) execute probe steps that emit like any
    /// other step — detach or drain the sink before exploring.
    pub fn set_event_sink(&mut self, sink: Option<SharedSink>) {
        self.sink = sink;
    }

    /// The step-denominated time-to-first-meal histogram: one sample per
    /// philosopher that ever started eating, valued at the step index of its
    /// first meal start.
    #[must_use]
    pub fn first_meal_histogram(&self) -> &Log2Histogram {
        &self.first_meal_hist
    }

    /// The step-denominated inter-meal histogram: gaps between consecutive
    /// meal starts of the same philosopher.
    #[must_use]
    pub fn inter_meal_histogram(&self) -> &Log2Histogram {
        &self.inter_meal_hist
    }

    /// The effective priority-number range `m` used by GDP1/GDP2 in this run.
    #[must_use]
    pub fn nr_range(&self) -> u32 {
        self.nr_range
    }

    /// A 64-bit fingerprint of the *shared-and-private* state (fork cells and
    /// program states), ignoring counters and statistics.
    ///
    /// Two system states with the same fingerprint are, with overwhelming
    /// probability, identical up to statistics; the analysis crate uses
    /// fingerprints to detect the no-progress cycles induced by the paper's
    /// adversaries (State 6 being "isomorphic" to State 1 in Section 3).
    #[must_use]
    pub fn state_fingerprint(&self) -> u64 {
        fingerprint64(&(&self.forks, &self.states))
    }

    fn holding_of(&self, philosopher: PhilosopherId) -> Holding {
        let ends = self.topology.forks_of(philosopher);
        let mut holding = Holding::new();
        for fork in ends.as_array() {
            if self.forks[fork.index()].holder() == Some(philosopher) {
                holding.push(fork);
            }
        }
        holding
    }

    /// Builds philosopher `p`'s view from scratch.
    fn compute_view(&self, p: PhilosopherId) -> PhilosopherView {
        make_view(
            p,
            self.program
                .observation(&self.states[p.index()], self.topology.forks_of(p)),
            self.holding_of(p),
            self.meals_completed[p.index()],
            self.scheduled[p.index()],
            self.hungry_since[p.index()],
        )
    }

    /// Refreshes the persistent view of philosopher `idx` in place.
    ///
    /// An atomic step can only change the stepped philosopher's own
    /// observable state — its program observation is a function of its own
    /// private state, and `take_if_free` / `release` only ever set or clear
    /// the *caller's* holdership of its own two forks — so refreshing this
    /// one view after each step keeps the whole buffer exact.
    fn refresh_view(&mut self, idx: usize) {
        let p = PhilosopherId::new(idx as u32);
        let ends = self.topology.forks_of(p);
        let observation = self.program.observation(&self.states[idx], ends);
        let holding = self.holding_of(p);
        let view = &mut self.views[idx];
        view.phase = observation.phase;
        view.committed = observation.committed;
        view.label = observation.label;
        view.holding = holding;
        view.meals = self.meals_completed[idx];
        view.scheduled = self.scheduled[idx];
        view.hungry_since = self.hungry_since[idx];
    }

    /// Rebuilds every philosopher view from scratch, bypassing the
    /// incremental buffer.
    ///
    /// This is the slow reference path; the engine itself never calls it on
    /// the hot path.  It exists so tests can assert that the incremental
    /// buffer stays exactly in sync (see the `incremental_views` tests and
    /// `docs/PERFORMANCE.md`).
    #[must_use]
    pub fn rebuilt_views(&self) -> Vec<PhilosopherView> {
        self.topology
            .philosopher_ids()
            .map(|p| self.compute_view(p))
            .collect()
    }

    /// The persistent, incrementally maintained philosopher views.
    #[must_use]
    pub fn views(&self) -> &[PhilosopherView] {
        &self.views
    }

    /// Runs `f` with a full-information [`SystemView`] of the current state.
    ///
    /// The view borrows the engine's persistent buffers, so this performs no
    /// allocation and no per-call view rebuilding; it cannot outlive the
    /// call.
    pub fn with_view<R>(&self, f: impl FnOnce(&SystemView<'_>) -> R) -> R {
        let view = SystemView::new(
            &self.topology,
            self.step_count,
            self.program.name(),
            &self.forks,
            &self.views,
        );
        f(&view)
    }

    /// Executes one atomic step for `philosopher` and returns its record.
    ///
    /// # Panics
    ///
    /// Panics if `philosopher` is out of range for the topology.
    pub fn step_philosopher(&mut self, philosopher: PhilosopherId) -> StepRecord {
        self.step_philosopher_impl(philosopher, None)
    }

    /// Executes one atomic step for `philosopher` with its random draws read
    /// from `tape` instead of the engine RNG (which is left untouched).
    ///
    /// This is the replay/enumeration entry point of the scripted-draw
    /// protocol (see [`crate::draws`]): if the step requests a draw past the
    /// end of the tape, [`DrawTape::pending`] reports the request and the
    /// resulting engine state is *meaningless* — the caller must discard it
    /// by [`restore`](Self::restore)-ing a snapshot.
    /// [`for_each_step_outcome`](Self::for_each_step_outcome) wraps the full
    /// probe-extend-rerun loop.
    ///
    /// # Panics
    ///
    /// Panics if `philosopher` is out of range for the topology, or if the
    /// tape's scripted outcomes mismatch the kinds of draws the program
    /// issues.
    pub fn step_philosopher_with_tape(
        &mut self,
        philosopher: PhilosopherId,
        tape: &mut DrawTape,
    ) -> StepRecord {
        self.step_philosopher_impl(philosopher, Some(tape))
    }

    fn step_philosopher_impl(
        &mut self,
        philosopher: PhilosopherId,
        tape: Option<&mut DrawTape>,
    ) -> StepRecord {
        let idx = philosopher.index();
        assert!(
            idx < self.states.len(),
            "adversary selected philosopher {philosopher} but the system has only {} philosophers",
            self.states.len()
        );
        let ends = self.topology.forks_of(philosopher);
        let phase_before = self.program.observation(&self.states[idx], ends).phase;
        let action = {
            let randomness = match tape {
                Some(tape) => StepRandomness::Scripted(tape),
                None => StepRandomness::Sampled(&mut self.rng),
            };
            let mut ctx = StepCtx::new(
                philosopher,
                ends,
                &mut self.forks,
                randomness,
                &self.config.hunger,
                self.config.left_bias,
                self.nr_range,
            );
            self.program.step(&mut self.states[idx], &mut ctx)
        };
        let phase_after = self.program.observation(&self.states[idx], ends).phase;

        // Scheduling accounting (for fairness bounds).
        let gap = match self.last_scheduled[idx] {
            Some(prev) => self.step_count - prev,
            None => self.step_count + 1,
        };
        self.max_scheduling_gap = self.max_scheduling_gap.max(gap);
        self.last_scheduled[idx] = Some(self.step_count);
        self.scheduled[idx] += 1;

        // Phase-transition accounting.
        if phase_before != Phase::Hungry && phase_after == Phase::Hungry {
            self.hungry_since[idx] = Some(self.step_count);
        }
        if phase_before != Phase::Eating && phase_after == Phase::Eating {
            if self.first_meal_started.is_none() {
                self.first_meal_started = Some(self.step_count);
            }
            if let Some(since) = self.hungry_since[idx] {
                self.waiting_times[idx].push(self.step_count - since);
            }
            match self.last_meal_start[idx] {
                None => self.first_meal_hist.record(self.step_count),
                Some(prev) => self.inter_meal_hist.record(self.step_count - prev),
            }
            self.last_meal_start[idx] = Some(self.step_count);
        }
        if phase_before == Phase::Eating && phase_after != Phase::Eating {
            self.meals_completed[idx] += 1;
            if self.first_meal_finished[idx].is_none() {
                self.first_meal_finished[idx] = Some(self.step_count);
            }
            self.hungry_since[idx] = None;
        }

        // Keep the persistent view buffer exact: only the stepped
        // philosopher's observable state can have changed.
        self.refresh_view(idx);

        // Structured-event emission (disabled: one branch).  The logical
        // clock is the step index, so the event stream is as deterministic
        // as the trace.
        if let Some(sink) = &self.sink {
            let clock = self.step_count;
            let actor = philosopher.raw();
            sink.record(&Event::Schedule { clock, actor });
            match action {
                Action::TakeFirst {
                    fork,
                    success: true,
                }
                | Action::TakeSecond {
                    fork,
                    success: true,
                } => sink.record(&Event::Acquire {
                    clock,
                    actor,
                    fork: fork.raw(),
                }),
                Action::Release { fork } => sink.record(&Event::Release {
                    clock,
                    actor,
                    fork: fork.raw(),
                }),
                Action::FinishEating => sink.record(&Event::MealFinish { clock, actor }),
                _ => {}
            }
            // Eating starts *implicitly* when the second fork lands (no
            // algorithm emits a dedicated action for it), so the meal-start
            // event comes from the phase transition, exactly like the
            // histogram accounting above.
            if phase_before != Phase::Eating && phase_after == Phase::Eating {
                sink.record(&Event::MealStart { clock, actor });
            }
        }

        let record = StepRecord {
            step: self.step_count,
            philosopher,
            action,
            phase_after,
        };
        if let Some(trace) = &mut self.trace {
            trace.push(record);
        }
        self.step_count += 1;
        record
    }

    /// Asks `adversary` for the next philosopher and executes its step.
    pub fn step_with<A: Adversary + ?Sized>(&mut self, adversary: &mut A) -> StepRecord {
        let chosen = self.with_view(|view| adversary.select(view));
        self.step_philosopher(chosen)
    }

    fn condition_met(&self, stop: &StopCondition) -> bool {
        match *stop {
            StopCondition::MaxSteps(_) => false,
            StopCondition::FirstMeal { .. } => self.first_meal_started.is_some(),
            StopCondition::TotalMeals { target, .. } => self.total_meals() >= target,
            StopCondition::PhilosopherEats { philosopher, .. } => {
                self.meals_completed[philosopher.index()] > 0
            }
            StopCondition::EveryoneEats { times, .. } => {
                self.meals_completed.iter().all(|&m| m >= times)
            }
        }
    }

    /// Drives the system with `adversary` until `stop` is satisfied or its
    /// step budget is exhausted, and returns a summary.
    ///
    /// Stop conditions are evaluated against the engine's *absolute* state
    /// (total meals so far, etc.), and the step budget counts steps executed
    /// by this call.  On a fresh engine the two readings coincide.
    pub fn run<A: Adversary + ?Sized>(
        &mut self,
        adversary: &mut A,
        stop: StopCondition,
    ) -> RunOutcome {
        let budget = stop.max_steps();
        let mut executed = 0u64;
        let mut reason = StopReason::StepLimitReached;
        if self.condition_met(&stop) {
            reason = StopReason::TargetReached;
        } else {
            while executed < budget {
                self.step_with(adversary);
                executed += 1;
                if self.condition_met(&stop) {
                    reason = StopReason::TargetReached;
                    break;
                }
            }
        }
        self.outcome(reason)
    }

    fn outcome(&self, reason: StopReason) -> RunOutcome {
        let fairness_bound = if self.last_scheduled.iter().all(Option::is_some) {
            Some(self.max_scheduling_gap.max(1))
        } else {
            None
        };
        RunOutcome {
            steps: self.step_count,
            reason,
            total_meals: self.total_meals(),
            meals_per_philosopher: self.meals_completed.clone(),
            first_meal_step: self.first_meal_started,
            first_meal_per_philosopher: self.first_meal_finished.clone(),
            scheduled_per_philosopher: self.scheduled.clone(),
            fairness_bound,
        }
    }

    /// Resets the engine to its initial state, keeping the same topology,
    /// program and configuration (including the seed: the next run replays
    /// the same philosopher randomness).
    pub fn reset(&mut self) {
        let seed = self.config.seed;
        self.reset_with_seed(seed);
    }

    /// Resets the engine and installs a new random seed — the standard way to
    /// perform independent Monte-Carlo trials without reallocating.
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.config.seed = seed;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        for fork in &mut self.forks {
            fork.reset();
        }
        for state in &mut self.states {
            *state = self.program.initial_state();
        }
        let n = self.states.len();
        self.step_count = 0;
        self.meals_completed.iter_mut().for_each(|m| *m = 0);
        self.first_meal_finished.iter_mut().for_each(|f| *f = None);
        self.first_meal_started = None;
        self.scheduled.iter_mut().for_each(|s| *s = 0);
        self.last_scheduled.iter_mut().for_each(|l| *l = None);
        self.max_scheduling_gap = 0;
        self.hungry_since.iter_mut().for_each(|h| *h = None);
        self.waiting_times.iter_mut().for_each(Vec::clear);
        self.last_meal_start.iter_mut().for_each(|l| *l = None);
        self.first_meal_hist.clear();
        self.inter_meal_hist.clear();
        self.trace = self.config.record_trace.then(|| Trace::new(n));
        for idx in 0..n {
            self.refresh_view(idx);
        }
    }

    /// Captures the engine's semantic state — fork cells, private program
    /// states, RNG position and step count — as an [`EngineState`].
    ///
    /// Statistics (meal counts, waiting times, the trace) are *not*
    /// captured; see the [`crate::snapshot`] module docs for why.
    #[must_use]
    pub fn snapshot(&self) -> EngineState<P> {
        EngineState {
            forks: self.forks.clone(),
            states: self.states.clone(),
            rng: self.rng.clone(),
            step_count: self.step_count,
        }
    }

    /// [`snapshot`](Self::snapshot) into an existing buffer, reusing its
    /// allocations (the hot path of state-space exploration).
    pub fn snapshot_into(&self, out: &mut EngineState<P>) {
        out.forks.clone_from(&self.forks);
        out.states.clone_from(&self.states);
        out.rng = self.rng.clone();
        out.step_count = self.step_count;
    }

    /// Restores the engine to a previously captured [`EngineState`].
    ///
    /// The fork cells, program states, RNG and step counter return exactly
    /// to their snapshot values, so a subsequent
    /// [`step_philosopher`](Self::step_philosopher) sequence replays
    /// bit-for-bit what it would have produced from the snapshot point.
    /// Run statistics — meal
    /// counts, scheduling/fairness accounting, waiting times and the trace —
    /// restart from zero, because a snapshot deliberately does not capture
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from an engine with a different
    /// number of forks or philosophers.
    pub fn restore(&mut self, snapshot: &EngineState<P>) {
        assert_eq!(
            snapshot.forks.len(),
            self.forks.len(),
            "snapshot has a different fork count than this engine"
        );
        assert_eq!(
            snapshot.states.len(),
            self.states.len(),
            "snapshot has a different philosopher count than this engine"
        );
        self.forks.clone_from(&snapshot.forks);
        self.states.clone_from(&snapshot.states);
        self.rng = snapshot.rng.clone();
        self.step_count = snapshot.step_count;
        let n = self.states.len();
        self.meals_completed.iter_mut().for_each(|m| *m = 0);
        self.first_meal_finished.iter_mut().for_each(|f| *f = None);
        self.first_meal_started = None;
        self.scheduled.iter_mut().for_each(|s| *s = 0);
        self.last_scheduled.iter_mut().for_each(|l| *l = None);
        self.max_scheduling_gap = 0;
        self.hungry_since.iter_mut().for_each(|h| *h = None);
        self.waiting_times.iter_mut().for_each(Vec::clear);
        self.last_meal_start.iter_mut().for_each(|l| *l = None);
        self.first_meal_hist.clear();
        self.inter_meal_hist.clear();
        self.trace = self.config.record_trace.then(|| Trace::new(n));
        for idx in 0..n {
            self.refresh_view(idx);
        }
    }

    /// Enumerates **every** possible outcome of scheduling `philosopher` for
    /// one atomic step from the current state — the probabilistic branching
    /// of the paper's automaton, made exhaustive.
    ///
    /// For each complete outcome, `visit` is called with the outcome's
    /// probability (the product of its draw probabilities; outcomes with
    /// probability 0 are never visited), the engine *in the post-step state*,
    /// and the step record.  The engine is restored to its pre-call state
    /// between outcomes and before returning, so `visit` may freely inspect
    /// or [`snapshot`](Self::snapshot) it but must not step it.
    ///
    /// The visited probabilities sum to 1 and their order is deterministic
    /// (draw-lexicographic), which the bitwise-determinism guarantees of
    /// `gdp-mcheck` rely on.
    ///
    /// # Panics
    ///
    /// Panics if `philosopher` is out of range for the topology.
    pub fn for_each_step_outcome(
        &mut self,
        philosopher: PhilosopherId,
        visit: impl FnMut(f64, &mut Engine<P>, &StepRecord),
    ) {
        let snapshot = self.snapshot();
        self.for_each_step_outcome_from(&snapshot, philosopher, visit);
    }

    /// [`for_each_step_outcome`](Self::for_each_step_outcome) relative to
    /// an explicit pre-step snapshot, the allocation-lean form used on the
    /// model-checking hot path (state-space builders already hold a
    /// snapshot of the state they are expanding).
    ///
    /// The engine's current state is clobbered; on return it is restored
    /// to `snapshot`.
    pub fn for_each_step_outcome_from(
        &mut self,
        snapshot: &EngineState<P>,
        philosopher: PhilosopherId,
        mut visit: impl FnMut(f64, &mut Engine<P>, &StepRecord),
    ) {
        let mut tape = DrawTape::new();
        self.enumerate_outcomes(snapshot, philosopher, &mut tape, 1.0, &mut visit);
        self.restore(snapshot);
    }

    fn enumerate_outcomes(
        &mut self,
        snapshot: &EngineState<P>,
        philosopher: PhilosopherId,
        tape: &mut DrawTape,
        probability: f64,
        visit: &mut impl FnMut(f64, &mut Engine<P>, &StepRecord),
    ) {
        self.restore(snapshot);
        tape.rewind();
        let record = self.step_philosopher_with_tape(philosopher, tape);
        match tape.pending() {
            None => visit(probability, self, &record),
            Some(request) => {
                for (outcome, p) in request.outcomes() {
                    tape.push(outcome);
                    self.enumerate_outcomes(snapshot, philosopher, tape, probability * p, visit);
                    tape.pop();
                }
            }
        }
    }

    /// Returns `true` if the current state is **stuck**: no scheduling
    /// choice and no random outcome of any single step changes the semantic
    /// state, so no meal can ever happen from here.
    ///
    /// This is the exact finite test for a true deadlock (e.g. the classic
    /// every-philosopher-holds-its-left-fork state): busy-wait loops that
    /// leave forks and program states untouched cannot escape, whereas any
    /// state with a productive step — including a merely improbable one — is
    /// not stuck.  The engine is restored before returning.
    pub fn is_stuck(&mut self) -> bool {
        let base = self.state_fingerprint();
        let n = self.states.len() as u32;
        for p in 0..n {
            let mut moved = false;
            self.for_each_step_outcome(PhilosopherId::new(p), |_, engine, _| {
                if engine.state_fingerprint() != base {
                    moved = true;
                }
            });
            if moved {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{RoundRobinAdversary, UniformRandomAdversary};
    use crate::program::{Action, ProgramObservation};
    use gdp_topology::builders::classic_ring;

    /// A two-phase toy program: a philosopher becomes hungry, grabs both of
    /// its forks in one atomic step if both are free (so it cannot deadlock),
    /// eats, and releases.  Not symmetric-randomized — just a harness
    /// exerciser.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum Toy {
        Thinking,
        Hungry,
        Eating,
    }

    struct ToyProgram;

    impl Program for ToyProgram {
        type State = Toy;

        fn name(&self) -> &'static str {
            "toy"
        }

        fn initial_state(&self) -> Toy {
            Toy::Thinking
        }

        fn observation(&self, state: &Toy, _ends: gdp_topology::ForkEnds) -> ProgramObservation {
            let phase = match state {
                Toy::Thinking => Phase::Thinking,
                Toy::Hungry => Phase::Hungry,
                Toy::Eating => Phase::Eating,
            };
            ProgramObservation {
                phase,
                committed: None,
                label: "toy",
            }
        }

        fn step(&self, state: &mut Toy, ctx: &mut StepCtx<'_>) -> Action {
            match state {
                Toy::Thinking => {
                    if ctx.becomes_hungry() {
                        *state = Toy::Hungry;
                        Action::BecomeHungry
                    } else {
                        Action::KeepThinking
                    }
                }
                Toy::Hungry => {
                    let (l, r) = (ctx.left(), ctx.right());
                    if ctx.is_free(l) && ctx.is_free(r) {
                        ctx.take_if_free(l);
                        ctx.take_if_free(r);
                        *state = Toy::Eating;
                        Action::StartEating
                    } else {
                        Action::Wait
                    }
                }
                Toy::Eating => {
                    ctx.release(ctx.left());
                    ctx.release(ctx.right());
                    *state = Toy::Thinking;
                    Action::FinishEating
                }
            }
        }
    }

    fn engine(n: usize, seed: u64) -> Engine<ToyProgram> {
        Engine::new(
            classic_ring(n).unwrap(),
            ToyProgram,
            SimConfig::default().with_seed(seed).with_trace(true),
        )
    }

    #[test]
    fn round_robin_run_makes_progress_and_counts_meals() {
        let mut e = engine(5, 1);
        let outcome = e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(1_000),
        );
        assert_eq!(outcome.steps, 1_000);
        assert!(outcome.made_progress());
        assert!(outcome.total_meals > 0);
        assert_eq!(
            outcome.total_meals,
            outcome.meals_per_philosopher.iter().sum::<u64>()
        );
        // Round-robin over 5 philosophers: fairness bound is exactly 5.
        assert_eq!(outcome.fairness_bound, Some(5));
        // Toy grabs both forks atomically, so with round-robin everyone eats.
        assert!(outcome.everyone_ate());
        assert_eq!(outcome.starved(), vec![]);
    }

    #[test]
    fn stop_at_first_meal() {
        let mut e = engine(5, 2);
        let outcome = e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::FirstMeal { max_steps: 10_000 },
        );
        assert!(outcome.reason.target_reached());
        assert!(outcome.made_progress());
        assert!(outcome.steps <= 10_000);
        assert_eq!(outcome.first_meal_step, e.first_meal_step());
    }

    #[test]
    fn stop_when_specific_philosopher_eats() {
        let mut e = engine(4, 3);
        let target = PhilosopherId::new(2);
        let outcome = e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::PhilosopherEats {
                philosopher: target,
                max_steps: 10_000,
            },
        );
        assert!(outcome.reason.target_reached());
        assert!(outcome.meals_per_philosopher[2] >= 1);
    }

    #[test]
    fn stop_when_everyone_has_eaten_twice() {
        let mut e = engine(3, 4);
        let outcome = e.run(
            &mut UniformRandomAdversary::new(9),
            StopCondition::EveryoneEats {
                times: 2,
                max_steps: 100_000,
            },
        );
        assert!(outcome.reason.target_reached());
        assert!(outcome.meals_per_philosopher.iter().all(|&m| m >= 2));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let mut a = engine(5, 42);
        let mut b = engine(5, 42);
        a.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(500),
        );
        b.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(500),
        );
        assert_eq!(a.trace().unwrap(), b.trace().unwrap());
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = engine(5, 1);
        let mut b = engine(5, 2);
        a.run(
            &mut UniformRandomAdversary::new(7),
            StopCondition::MaxSteps(500),
        );
        b.run(
            &mut UniformRandomAdversary::new(7),
            StopCondition::MaxSteps(500),
        );
        // The toy program only uses randomness through the hunger model
        // (Always → no randomness), so instead compare against a Bernoulli
        // model to make sure seeds reach the philosophers.
        let config = SimConfig::default()
            .with_seed(1)
            .with_hunger(crate::HungerModel::Bernoulli(0.5))
            .with_trace(true);
        let mut c = Engine::new(classic_ring(5).unwrap(), ToyProgram, config.clone());
        let mut d = Engine::new(classic_ring(5).unwrap(), ToyProgram, config.with_seed(99));
        c.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(500),
        );
        d.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(500),
        );
        assert_ne!(c.trace().unwrap(), d.trace().unwrap());
    }

    #[test]
    fn reset_replays_identically() {
        let mut e = engine(4, 5);
        e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(300),
        );
        let first_trace = e.trace().unwrap().clone();
        let fp1 = e.state_fingerprint();
        e.reset();
        e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(300),
        );
        assert_eq!(e.trace().unwrap(), &first_trace);
        assert_eq!(e.state_fingerprint(), fp1);
    }

    #[test]
    fn reset_with_new_seed_changes_randomized_behaviour() {
        let config = SimConfig::default()
            .with_hunger(crate::HungerModel::Bernoulli(0.3))
            .with_trace(true);
        let mut e = Engine::new(classic_ring(4).unwrap(), ToyProgram, config);
        e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(400),
        );
        let t1 = e.trace().unwrap().clone();
        e.reset_with_seed(1234);
        e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(400),
        );
        assert_ne!(e.trace().unwrap(), &t1);
        assert_eq!(e.step_count(), 400);
    }

    #[test]
    fn waiting_times_are_recorded() {
        let mut e = engine(3, 0);
        e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(600),
        );
        let any_waits = e
            .topology()
            .philosopher_ids()
            .any(|p| !e.waiting_times(p).is_empty());
        assert!(any_waits);
    }

    /// Property-style check for the incremental view buffer: after arbitrary
    /// step sequences (random adversary, random seeds, several topologies and
    /// hunger models) the persistent views must equal views rebuilt from
    /// scratch, after every single step.
    #[test]
    fn incremental_views_match_rebuilt_views_under_random_stepping() {
        for n in [2usize, 3, 5, 8] {
            for seed in 0..4u64 {
                let config = SimConfig::default()
                    .with_seed(seed)
                    .with_hunger(crate::HungerModel::Bernoulli(0.7));
                let mut engine = Engine::new(classic_ring(n).unwrap(), ToyProgram, config);
                let mut adversary = UniformRandomAdversary::new(seed ^ 0xFEED);
                for step in 0..400 {
                    engine.step_with(&mut adversary);
                    assert_eq!(
                        engine.views(),
                        engine.rebuilt_views().as_slice(),
                        "incremental views diverged (n={n}, seed={seed}, step={step})"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_views_match_after_reset_with_seed() {
        let mut engine = engine(4, 11);
        engine.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(250),
        );
        engine.reset_with_seed(12);
        assert_eq!(engine.views(), engine.rebuilt_views().as_slice());
        engine.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(123),
        );
        assert_eq!(engine.views(), engine.rebuilt_views().as_slice());
    }

    #[test]
    fn view_reflects_engine_state() {
        let mut e = engine(3, 0);
        e.run(&mut RoundRobinAdversary::new(), StopCondition::MaxSteps(50));
        let meals = e.total_meals();
        e.with_view(|view| {
            assert_eq!(view.total_meals(), meals);
            assert_eq!(view.num_philosophers(), 3);
            assert_eq!(view.step(), 50);
            assert_eq!(view.program_name(), "toy");
        });
    }

    #[test]
    #[should_panic(expected = "adversary selected philosopher")]
    fn out_of_range_selection_panics() {
        let mut e = engine(3, 0);
        e.step_philosopher(PhilosopherId::new(99));
    }

    #[test]
    fn never_hungry_means_no_meals() {
        let config = SimConfig::default().with_hunger(crate::HungerModel::Never);
        let mut e = Engine::new(classic_ring(4).unwrap(), ToyProgram, config);
        let outcome = e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(1_000),
        );
        assert_eq!(outcome.total_meals, 0);
        assert!(!outcome.made_progress());
    }

    #[test]
    fn snapshot_restore_replays_bit_for_bit() {
        // Run a prefix, snapshot, run a suffix; restoring the snapshot and
        // re-running the suffix must reproduce the exact same state —
        // including the RNG stream.
        let config = SimConfig::default()
            .with_seed(3)
            .with_hunger(crate::HungerModel::Bernoulli(0.6));
        let mut engine = Engine::new(classic_ring(5).unwrap(), ToyProgram, config);
        let mut adversary = UniformRandomAdversary::new(17);
        for _ in 0..137 {
            engine.step_with(&mut adversary);
        }
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.fingerprint(), engine.state_fingerprint());
        assert_eq!(snapshot.step_count(), 137);
        let mut suffix_adversary = adversary.clone();
        let records: Vec<_> = (0..211)
            .map(|_| engine.step_with(&mut suffix_adversary))
            .collect();
        let end_fp = engine.state_fingerprint();

        engine.restore(&snapshot);
        assert_eq!(engine.state_fingerprint(), snapshot.fingerprint());
        assert_eq!(engine.step_count(), 137);
        assert_eq!(engine.views(), engine.rebuilt_views().as_slice());
        let replayed: Vec<_> = (0..211).map(|_| engine.step_with(&mut adversary)).collect();
        assert_eq!(records, replayed);
        assert_eq!(engine.state_fingerprint(), end_fp);
    }

    #[test]
    fn snapshot_into_reuses_buffers_and_matches_snapshot() {
        let mut engine = engine(4, 9);
        let mut buffer = engine.snapshot();
        engine.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(100),
        );
        engine.snapshot_into(&mut buffer);
        assert_eq!(buffer, engine.snapshot());
    }

    #[test]
    fn scripted_step_with_empty_tape_reports_pending_for_random_draws() {
        use crate::draws::{DrawRequest, DrawTape};
        // Bernoulli hunger: the very first scheduled step needs a coin.
        let config = SimConfig::default().with_hunger(crate::HungerModel::Bernoulli(0.3));
        let mut engine = Engine::new(classic_ring(3).unwrap(), ToyProgram, config);
        let snapshot = engine.snapshot();
        let mut tape = DrawTape::new();
        engine.step_philosopher_with_tape(PhilosopherId::new(0), &mut tape);
        assert_eq!(tape.pending(), Some(DrawRequest::Coin { p_true: 0.3 }));
        engine.restore(&snapshot);
        assert_eq!(engine.state_fingerprint(), snapshot.fingerprint());
    }

    #[test]
    fn for_each_step_outcome_enumerates_a_coin_with_probabilities_summing_to_one() {
        let config = SimConfig::default().with_hunger(crate::HungerModel::Bernoulli(0.25));
        let mut engine = Engine::new(classic_ring(3).unwrap(), ToyProgram, config);
        let before = engine.state_fingerprint();
        let mut outcomes = Vec::new();
        engine.for_each_step_outcome(PhilosopherId::new(0), |p, e, record| {
            outcomes.push((p, e.state_fingerprint(), record.action));
        });
        // One coin: hungry (p = 0.25) or still thinking (p = 0.75).
        assert_eq!(outcomes.len(), 2);
        assert!((outcomes.iter().map(|o| o.0).sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(outcomes[0].2, Action::BecomeHungry);
        assert_ne!(outcomes[0].1, before, "becoming hungry changes the state");
        assert_eq!(outcomes[1].1, before, "keep-thinking leaves the state");
        // The engine itself is restored.
        assert_eq!(engine.state_fingerprint(), before);
        assert_eq!(engine.views(), engine.rebuilt_views().as_slice());
    }

    #[test]
    fn for_each_step_outcome_is_deterministic_for_always_hungry_steps() {
        // Always-hungry Toy steps draw nothing: exactly one outcome, p = 1.
        let mut engine = engine(3, 0);
        let mut count = 0;
        engine.for_each_step_outcome(PhilosopherId::new(1), |p, _, record| {
            count += 1;
            assert_eq!(p, 1.0);
            assert_eq!(record.action, Action::BecomeHungry);
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn fresh_states_are_not_stuck_and_toy_never_deadlocks() {
        let mut engine = engine(3, 1);
        assert!(!engine.is_stuck(), "initial state can always advance");
        engine.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(500),
        );
        assert!(!engine.is_stuck());
    }

    #[test]
    fn relabelled_fingerprint_identity_matches_fingerprint() {
        use crate::snapshot::RelabelScratch;
        let mut engine = engine(4, 2);
        engine.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(123),
        );
        let snapshot = engine.snapshot();
        let phil_id: Vec<PhilosopherId> = (0..4).map(PhilosopherId::new).collect();
        let fork_id: Vec<ForkId> = (0..4).map(ForkId::new).collect();
        let mut scratch = RelabelScratch::new();
        assert_eq!(
            snapshot.relabelled_fingerprint(&phil_id, &fork_id, &mut scratch),
            snapshot.fingerprint()
        );
        // A ring rotation relabels the state consistently: rotating twice by
        // one is the same as rotating once by two.
        let rot = |c: u32| {
            (
                (0..4u32)
                    .map(|p| PhilosopherId::new((p + c) % 4))
                    .collect::<Vec<_>>(),
                (0..4u32)
                    .map(|f| ForkId::new((f + c) % 4))
                    .collect::<Vec<_>>(),
            )
        };
        let (p1, f1) = rot(1);
        let (p2, f2) = rot(2);
        let once = snapshot.relabelled_fingerprint(&p1, &f1, &mut scratch);
        let twice = snapshot.relabelled_fingerprint(&p2, &f2, &mut scratch);
        assert_ne!(once, snapshot.fingerprint());
        assert_ne!(once, twice);
    }

    #[test]
    fn event_sink_mirrors_the_trace_and_survives_reset() {
        use gdp_observe::{Event, MemorySink};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let mut e = engine(5, 7);
        e.set_event_sink(Some(sink.clone()));
        e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(400),
        );
        let events = sink.take();
        let schedules: Vec<&Event> = events
            .iter()
            .filter(|ev| matches!(ev, Event::Schedule { .. }))
            .collect();
        assert_eq!(schedules.len(), 400, "one schedule event per step");
        let meal_starts: Vec<(u64, u32)> = events
            .iter()
            .filter_map(|ev| match ev {
                Event::MealStart { clock, actor } => Some((*clock, *actor)),
                _ => None,
            })
            .collect();
        let from_trace: Vec<(u64, u32)> = e
            .trace()
            .unwrap()
            .meals_started()
            .iter()
            .map(|&(step, p)| (step, p.raw()))
            .collect();
        assert_eq!(meal_starts, from_trace, "meal events mirror the trace");
        // Clocks are non-decreasing step indices.
        let clocks: Vec<u64> = events.iter().map(Event::clock).collect();
        assert!(clocks.windows(2).all(|w| w[0] <= w[1]));

        // The sink survives reset and keeps recording.
        e.reset_with_seed(8);
        e.run(&mut RoundRobinAdversary::new(), StopCondition::MaxSteps(10));
        assert_eq!(
            sink.take()
                .iter()
                .filter(|ev| matches!(ev, Event::Schedule { .. }))
                .count(),
            10
        );
    }

    #[test]
    fn meal_histograms_are_step_denominated_and_cleared_on_reset() {
        let mut e = engine(5, 3);
        e.run(
            &mut RoundRobinAdversary::new(),
            StopCondition::MaxSteps(2_000),
        );
        let eaters = e
            .topology()
            .philosopher_ids()
            .filter(|&p| e.meals_of(p) > 0)
            .count() as u64;
        assert!(eaters > 0);
        // One first-meal sample per philosopher that ever ate; every later
        // meal start is an inter-meal sample.
        assert_eq!(e.first_meal_histogram().total(), eaters);
        let total_starts = e.trace().unwrap().meals_started().len() as u64;
        assert_eq!(e.inter_meal_histogram().total(), total_starts - eaters);
        // The earliest possible first meal needs a few steps, so the p50
        // estimate is positive and below the step budget.
        let p50 = e.first_meal_histogram().quantile(50.0);
        assert!(p50 > 0.0 && p50 < 2_000.0);

        e.reset();
        assert!(e.first_meal_histogram().is_empty());
        assert!(e.inter_meal_histogram().is_empty());
    }

    #[test]
    fn nr_range_defaults_to_fork_count() {
        let e = engine(6, 0);
        assert_eq!(e.nr_range(), 6);
        let e2 = Engine::new(
            classic_ring(6).unwrap(),
            ToyProgram,
            SimConfig::default().with_nr_range(50),
        );
        assert_eq!(e2.nr_range(), 50);
    }
}
