//! # gdp-sim
//!
//! Execution substrate for the generalized dining philosophers problem of
//! Herescu & Palamidessi (PODC 2001).
//!
//! The paper works in the *probabilistic automata* model of Segala & Lynch:
//! a computation is an interleaving of atomic philosopher actions, the
//! interleaving is chosen by an **adversary** (scheduler) with complete
//! information about the past, and the philosophers' own **random draws**
//! are outside the adversary's control.  This crate implements that model as
//! a deterministic, seedable discrete-event engine:
//!
//! * [`ForkCell`] — the shared state of one fork: its holder, its priority
//!   number `nr` (used by GDP1/GDP2), its request list and its guest book
//!   (used by LR2/GDP2).  All mutation goes through atomic-step methods.
//! * [`Program`] — the interface an algorithm implements.  One call to
//!   [`Program::step`] corresponds to one numbered line of the paper's
//!   pseudo-code (Tables 1–4) and is executed atomically with respect to the
//!   scheduler, exactly as the paper assumes for its test-and-set operations.
//! * [`StepCtx`] — the restricted view a philosopher has of the system while
//!   executing a step: its own two forks, the atomic operations on them, and
//!   its private randomness.  A philosopher cannot observe or touch any
//!   other part of the system, which enforces the paper's *full
//!   distribution* requirement by construction.
//! * [`Adversary`] — the scheduler interface, with full-information
//!   [`SystemView`] access, plus the built-in fair schedulers
//!   ([`RoundRobinAdversary`], [`UniformRandomAdversary`]).
//! * [`Engine`] — drives the interleaving: repeatedly asks the adversary for
//!   a philosopher, executes that philosopher's next atomic step, records
//!   the [`Trace`], and evaluates [`StopCondition`]s.
//! * [`EngineState`] — first-class snapshots of the semantic state
//!   (forks, private program states, RNG, step counter) with `O(n + k)`
//!   [`Engine::restore`], plus the relabelled-fingerprint canonical
//!   encoding behind `gdp-mcheck`'s symmetry quotient.
//! * [`DrawTape`] — scripted randomness: replay or exhaustively enumerate
//!   a step's random draws ([`Engine::for_each_step_outcome`]), the
//!   probabilistic-branching primitive of exact model checking; also
//!   behind the exact deadlock test [`Engine::is_stuck`].
//!
//! Crafted adversaries that defeat LR1/LR2 (Section 3 and Theorems 1–2 of
//! the paper) live in the `gdp-adversary` crate; the algorithms themselves
//! (Tables 1–4) live in `gdp-algorithms`.
//!
//! ## Example
//!
//! ```
//! use gdp_sim::{Engine, SimConfig, RoundRobinAdversary, StopCondition, Program, Phase,
//!               StepCtx, Action, ProgramObservation};
//! use gdp_topology::builders::classic_ring;
//!
//! // A deliberately naive deterministic program: grab left, then right.
//! // (It can deadlock — the engine is agnostic; correctness lives in the
//! // algorithms crate.)
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! enum Naive { Thinking, WantLeft, WantRight, Eating }
//!
//! struct NaiveProgram;
//! impl Program for NaiveProgram {
//!     type State = Naive;
//!     fn name(&self) -> &'static str { "naive" }
//!     fn initial_state(&self) -> Naive { Naive::Thinking }
//!     fn observation(&self, s: &Naive, _ends: gdp_topology::ForkEnds) -> ProgramObservation {
//!         let phase = match s {
//!             Naive::Thinking => Phase::Thinking,
//!             Naive::Eating => Phase::Eating,
//!             _ => Phase::Hungry,
//!         };
//!         ProgramObservation { phase, committed: None, label: "naive" }
//!     }
//!     fn step(&self, state: &mut Naive, ctx: &mut StepCtx<'_>) -> Action {
//!         match state {
//!             Naive::Thinking => {
//!                 if ctx.becomes_hungry() { *state = Naive::WantLeft; Action::BecomeHungry }
//!                 else { Action::KeepThinking }
//!             }
//!             Naive::WantLeft => {
//!                 let left = ctx.left();
//!                 if ctx.take_if_free(left) { *state = Naive::WantRight; }
//!                 Action::TestAndSet { fork: left }
//!             }
//!             Naive::WantRight => {
//!                 let right = ctx.right();
//!                 if ctx.take_if_free(right) { *state = Naive::Eating; }
//!                 Action::TestAndSet { fork: right }
//!             }
//!             Naive::Eating => {
//!                 ctx.release(ctx.left());
//!                 ctx.release(ctx.right());
//!                 *state = Naive::Thinking;
//!                 Action::FinishEating
//!             }
//!         }
//!     }
//! }
//!
//! let topology = classic_ring(3).unwrap();
//! let mut engine = Engine::new(topology, NaiveProgram, SimConfig::default().with_seed(1));
//! let outcome = engine.run(&mut RoundRobinAdversary::new(), StopCondition::MaxSteps(1_000));
//! assert_eq!(outcome.steps, 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod config;
pub mod draws;
mod engine;
mod fork;
mod hash;
mod hunger;
mod outcome;
mod program;
pub mod snapshot;
mod trace;
mod view;

pub use adversary::{Adversary, RoundRobinAdversary, UniformRandomAdversary};
pub use config::SimConfig;
pub use draws::{DrawOutcome, DrawRequest, DrawTape};
pub use engine::Engine;
pub use fork::{ForkCell, UsageStamp};
pub use hash::fingerprint64;
pub use hunger::HungerModel;
pub use outcome::{RunOutcome, StopCondition, StopReason};
pub use program::{Action, Phase, Program, ProgramObservation, StepCtx};
pub use snapshot::{EngineState, RelabelScratch};
pub use trace::{StepRecord, Trace};
pub use view::{Holding, PhilosopherView, SystemView};
