//! First-class engine state snapshots.
//!
//! An [`EngineState`] captures the *semantic* state of a running
//! [`Engine`](crate::Engine) — exactly the state of the paper's
//! probabilistic automaton:
//!
//! * the shared fork cells (holders, `nr` numbers, request lists, guest
//!   books),
//! * every philosopher's private program state,
//! * the philosophers' randomness (the RNG stream position), and
//! * the global step counter.
//!
//! Run *statistics* (meal counts, waiting times, traces, fairness
//! accounting) are deliberately **not** captured: two executions that reach
//! the same `EngineState` are indistinguishable to every philosopher and to
//! the shared forks, regardless of how they got there.  Restoring a
//! snapshot therefore resets the statistics, as documented on
//! [`Engine::restore`](crate::Engine::restore).
//!
//! Snapshots replace the replay-per-expansion scheme the state-space
//! explorer used before: instead of re-simulating an entire decision prefix
//! to revisit a state (`O(depth)` per expansion), exploration stores the
//! `EngineState` and restores it in `O(n + k)`.  `gdp-mcheck` builds its
//! exact MDP on the same primitive.
//!
//! The **canonical encoding** half of this module is
//! [`EngineState::fingerprint`] (identical to
//! [`Engine::state_fingerprint`](crate::Engine::state_fingerprint), built on
//! [`fingerprint64`]) and
//! [`EngineState::relabelled_fingerprint`], which hashes the state as it
//! would look after applying a topology automorphism — the primitive behind
//! the symmetry quotient of `gdp-mcheck`.

use crate::fork::ForkCell;
use crate::hash::fingerprint64;
use crate::program::Program;
use gdp_topology::{ForkId, PhilosopherId};
use rand_chacha::ChaCha8Rng;

/// A snapshot of the semantic state of an [`Engine`](crate::Engine).
///
/// Create one with [`Engine::snapshot`](crate::Engine::snapshot) (or reuse
/// allocations with [`Engine::snapshot_into`](crate::Engine::snapshot_into))
/// and go back to it with [`Engine::restore`](crate::Engine::restore).
pub struct EngineState<P: Program> {
    pub(crate) forks: Vec<ForkCell>,
    pub(crate) states: Vec<P::State>,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) step_count: u64,
}

// Manual impls: deriving would bound `P` itself instead of just `P::State`
// (the only program-dependent field type).
impl<P: Program> Clone for EngineState<P> {
    fn clone(&self) -> Self {
        EngineState {
            forks: self.forks.clone(),
            states: self.states.clone(),
            rng: self.rng.clone(),
            step_count: self.step_count,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.forks.clone_from(&source.forks);
        self.states.clone_from(&source.states);
        self.rng = source.rng.clone();
        self.step_count = source.step_count;
    }
}

impl<P: Program> std::fmt::Debug for EngineState<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineState")
            .field("forks", &self.forks)
            .field("states", &self.states)
            .field("step_count", &self.step_count)
            .finish_non_exhaustive()
    }
}

impl<P: Program> PartialEq for EngineState<P> {
    fn eq(&self, other: &Self) -> bool {
        self.step_count == other.step_count
            && self.forks == other.forks
            && self.states == other.states
            && self.rng == other.rng
    }
}

impl<P: Program> Eq for EngineState<P> {}

impl<P: Program> EngineState<P> {
    /// The shared state of every fork, indexed by [`ForkId::index`].
    #[must_use]
    pub fn forks(&self) -> &[ForkCell] {
        &self.forks
    }

    /// Every philosopher's private program state, indexed by
    /// [`PhilosopherId::index`].
    #[must_use]
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The step count at which the snapshot was taken.
    #[must_use]
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// A 64-bit fingerprint of the shared-and-private state (fork cells and
    /// program states), ignoring the RNG and the step counter.
    ///
    /// Equal to [`Engine::state_fingerprint`](crate::Engine::state_fingerprint)
    /// of the engine the snapshot was taken from.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fingerprint64(&(&self.forks, &self.states))
    }

    /// The fingerprint this state would have after relabelling philosopher
    /// `p` as `phil_map[p]` and fork `f` as `fork_map[f]`.
    ///
    /// For the identity maps this equals [`fingerprint`](Self::fingerprint).
    /// When the maps form an *orientation-preserving automorphism* of the
    /// topology (see `gdp_topology::automorphisms`) and the program's
    /// private state contains no absolute identifiers (true for all the
    /// side-based paper algorithms), the relabelled state is bisimilar to
    /// this one — which is what makes fingerprint-minimisation over an
    /// automorphism set a sound symmetry quotient.
    ///
    /// `scratch` carries the buffers for the relabelled copy so repeated
    /// calls (one per automorphism per explored state) stay allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the map lengths do not match the snapshot's fork and
    /// philosopher counts.
    #[must_use]
    pub fn relabelled_fingerprint(
        &self,
        phil_map: &[PhilosopherId],
        fork_map: &[ForkId],
        scratch: &mut RelabelScratch<P>,
    ) -> u64 {
        assert_eq!(fork_map.len(), self.forks.len(), "fork map length mismatch");
        assert_eq!(
            phil_map.len(),
            self.states.len(),
            "philosopher map length mismatch"
        );
        scratch.forks.resize_with(self.forks.len(), ForkCell::new);
        for (f, cell) in self.forks.iter().enumerate() {
            cell.relabel_philosophers_into(
                |p| phil_map[p.index()],
                &mut scratch.forks[fork_map[f].index()],
            );
        }
        if scratch.states.len() == self.states.len() {
            for (p, state) in self.states.iter().enumerate() {
                scratch.states[phil_map[p].index()].clone_from(state);
            }
        } else {
            scratch.states.clear();
            scratch.states.extend(self.states.iter().cloned());
            for (p, state) in self.states.iter().enumerate() {
                scratch.states[phil_map[p].index()].clone_from(state);
            }
        }
        fingerprint64(&(&scratch.forks, &scratch.states))
    }
}

/// Reusable buffers for [`EngineState::relabelled_fingerprint`].
#[derive(Debug)]
pub struct RelabelScratch<P: Program> {
    forks: Vec<ForkCell>,
    states: Vec<P::State>,
}

impl<P: Program> RelabelScratch<P> {
    /// Creates an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        RelabelScratch {
            forks: Vec::new(),
            states: Vec::new(),
        }
    }
}

impl<P: Program> Default for RelabelScratch<P> {
    fn default() -> Self {
        RelabelScratch::new()
    }
}
