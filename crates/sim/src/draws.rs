//! Scripted randomness: replaying and enumerating a step's random draws.
//!
//! The paper's probabilistic automaton treats a philosopher's random draws
//! as *probabilistic branches*: when a scheduled step reaches a coin flip or
//! a `random[1, m]` draw, the automaton forks into one successor per
//! outcome, weighted by the outcome's probability.  Monte-Carlo simulation
//! samples those branches through the engine's seeded RNG; exact model
//! checking (`gdp-mcheck`) must instead *enumerate* them.
//!
//! A [`DrawTape`] is the bridge between the two worlds.  A step executed
//! with [`Engine::step_philosopher_with_tape`](crate::Engine::step_philosopher_with_tape)
//! consumes its random draws from the tape instead of the RNG:
//!
//! * while the tape has prerecorded outcomes, each draw pops the next one
//!   (replaying one concrete branch of the automaton);
//! * the first draw *past* the end of the tape records the [`DrawRequest`]
//!   that the program issued — its kind and outcome domain — and returns a
//!   default value.  The caller observes the pending request, discards the
//!   poisoned execution (by restoring a snapshot), and re-runs the step once
//!   per possible outcome with an extended tape.
//!
//! [`Engine::for_each_step_outcome`](crate::Engine::for_each_step_outcome)
//! packages that probe-extend-rerun loop into a single enumeration
//! primitive; everything in `gdp-mcheck` is built on it.

/// The kind (and outcome domain) of one random draw a program requested.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DrawRequest {
    /// A biased coin: `true` with probability `p_true`.  Issued by
    /// [`StepCtx::random_side`](crate::StepCtx::random_side) (where `true`
    /// means *left*) and by Bernoulli hunger models.
    Coin {
        /// Probability of drawing `true`.
        p_true: f64,
    },
    /// A uniform draw from `[1, m]`, issued by
    /// [`StepCtx::random_nr`](crate::StepCtx::random_nr).
    Uniform {
        /// Inclusive upper bound `m` of the outcome range.
        m: u32,
    },
}

impl DrawRequest {
    /// The outcomes of this draw with *positive probability*, as
    /// `(outcome, probability)` pairs in a fixed deterministic order.
    ///
    /// Degenerate coins (`p_true` of 0 or 1) have a single outcome, so
    /// enumeration never explores probability-0 branches.
    #[must_use]
    pub fn outcomes(self) -> Vec<(DrawOutcome, f64)> {
        match self {
            DrawRequest::Coin { p_true } => {
                let mut out = Vec::with_capacity(2);
                if p_true > 0.0 {
                    out.push((DrawOutcome::Coin(true), p_true));
                }
                if p_true < 1.0 {
                    out.push((DrawOutcome::Coin(false), 1.0 - p_true));
                }
                out
            }
            DrawRequest::Uniform { m } => {
                let p = 1.0 / f64::from(m.max(1));
                (1..=m.max(1))
                    .map(|value| (DrawOutcome::Uniform(value), p))
                    .collect()
            }
        }
    }
}

/// One resolved outcome on a [`DrawTape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrawOutcome {
    /// Outcome of a [`DrawRequest::Coin`].
    Coin(bool),
    /// Outcome of a [`DrawRequest::Uniform`] (a value in `[1, m]`).
    Uniform(u32),
}

/// A finite script of draw outcomes consumed by one scripted step.
///
/// See the [module documentation](self) for the probe-extend-rerun protocol.
#[derive(Clone, Debug, Default)]
pub struct DrawTape {
    outcomes: Vec<DrawOutcome>,
    position: usize,
    pending: Option<DrawRequest>,
}

impl DrawTape {
    /// An empty tape: the very first draw of a scripted step will run past
    /// the end and surface as [`pending`](Self::pending).
    #[must_use]
    pub fn new() -> Self {
        DrawTape::default()
    }

    /// Rewinds the tape to its beginning and clears any pending request,
    /// keeping the recorded outcomes.
    pub fn rewind(&mut self) {
        self.position = 0;
        self.pending = None;
    }

    /// Empties the tape entirely.
    pub fn clear(&mut self) {
        self.outcomes.clear();
        self.rewind();
    }

    /// Appends `outcome` to the script.
    pub fn push(&mut self, outcome: DrawOutcome) {
        self.outcomes.push(outcome);
    }

    /// Removes the last scripted outcome, if any.
    pub fn pop(&mut self) -> Option<DrawOutcome> {
        self.outcomes.pop()
    }

    /// The scripted outcomes.
    #[must_use]
    pub fn outcomes(&self) -> &[DrawOutcome] {
        &self.outcomes
    }

    /// The draw request that ran past the end of the tape during the last
    /// scripted step, if any.  A pending request poisons the execution it
    /// occurred in: the engine state after that step is meaningless and must
    /// be discarded by restoring a snapshot.
    #[must_use]
    pub fn pending(&self) -> Option<DrawRequest> {
        self.pending
    }

    /// Pops the next scripted coin outcome, or records a pending
    /// [`DrawRequest::Coin`] and returns a default.
    ///
    /// # Panics
    ///
    /// Panics if the next scripted outcome is not a coin: programs are
    /// deterministic in the *sequence of draw kinds* they issue from a given
    /// state, so a kind mismatch indicates a caller bug (replaying a tape
    /// recorded for a different state).
    pub(crate) fn draw_coin(&mut self, p_true: f64) -> bool {
        match self.next_outcome(DrawRequest::Coin { p_true }) {
            Some(DrawOutcome::Coin(value)) => value,
            Some(other) => panic!("scripted step expected a coin draw, tape has {other:?}"),
            None => false,
        }
    }

    /// Pops the next scripted uniform outcome, or records a pending
    /// [`DrawRequest::Uniform`] and returns a default.
    ///
    /// # Panics
    ///
    /// Panics if the next scripted outcome is not a uniform draw (see
    /// [`draw_coin`](Self::draw_coin)).
    pub(crate) fn draw_uniform(&mut self, m: u32) -> u32 {
        match self.next_outcome(DrawRequest::Uniform { m }) {
            Some(DrawOutcome::Uniform(value)) => value,
            Some(other) => panic!("scripted step expected a uniform draw, tape has {other:?}"),
            None => 1,
        }
    }

    fn next_outcome(&mut self, request: DrawRequest) -> Option<DrawOutcome> {
        if self.position < self.outcomes.len() {
            let outcome = self.outcomes[self.position];
            self.position += 1;
            Some(outcome)
        } else {
            if self.pending.is_none() {
                self.pending = Some(request);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_replays_in_order_then_reports_pending() {
        let mut tape = DrawTape::new();
        tape.push(DrawOutcome::Coin(true));
        tape.push(DrawOutcome::Uniform(4));
        assert!(tape.draw_coin(0.5));
        assert_eq!(tape.draw_uniform(9), 4);
        assert_eq!(tape.pending(), None);
        // Past the end: default value, pending recorded once.
        assert_eq!(tape.draw_uniform(9), 1);
        assert!(!tape.draw_coin(0.25));
        assert_eq!(tape.pending(), Some(DrawRequest::Uniform { m: 9 }));
    }

    #[test]
    fn rewind_replays_and_clear_empties() {
        let mut tape = DrawTape::new();
        tape.push(DrawOutcome::Coin(false));
        assert!(!tape.draw_coin(0.5));
        tape.rewind();
        assert!(!tape.draw_coin(0.5));
        tape.clear();
        assert_eq!(tape.outcomes(), &[]);
        let _ = tape.draw_coin(0.5);
        assert_eq!(tape.pending(), Some(DrawRequest::Coin { p_true: 0.5 }));
    }

    #[test]
    #[should_panic(expected = "expected a coin draw")]
    fn kind_mismatch_panics() {
        let mut tape = DrawTape::new();
        tape.push(DrawOutcome::Uniform(2));
        let _ = tape.draw_coin(0.5);
    }

    #[test]
    fn coin_outcomes_skip_probability_zero_branches() {
        assert_eq!(
            DrawRequest::Coin { p_true: 1.0 }.outcomes(),
            vec![(DrawOutcome::Coin(true), 1.0)]
        );
        assert_eq!(
            DrawRequest::Coin { p_true: 0.0 }.outcomes(),
            vec![(DrawOutcome::Coin(false), 1.0)]
        );
        let fair = DrawRequest::Coin { p_true: 0.5 }.outcomes();
        assert_eq!(fair.len(), 2);
        assert_eq!(fair[0].0, DrawOutcome::Coin(true));
    }

    #[test]
    fn uniform_outcomes_cover_the_range_uniformly() {
        let outcomes = DrawRequest::Uniform { m: 4 }.outcomes();
        assert_eq!(outcomes.len(), 4);
        for (i, (outcome, p)) in outcomes.iter().enumerate() {
            assert_eq!(*outcome, DrawOutcome::Uniform(i as u32 + 1));
            assert!((p - 0.25).abs() < 1e-12);
        }
    }
}
