//! Structural analysis of conflict topologies.
//!
//! The negative results of the paper are conditioned on structural
//! properties of the conflict multigraph:
//!
//! * **Theorem 1** applies when the graph contains a ring (cycle) one of
//!   whose nodes has at least three incident arcs;
//! * **Theorem 2** applies when two nodes of a ring are connected by at
//!   least three different (internally disjoint) paths, i.e. the graph
//!   contains a *theta* subgraph.
//!
//! This module provides decision procedures for both preconditions, plus the
//! supporting machinery (connectivity, biconnected components, cycle
//! enumeration, degree statistics) used by the adversaries, the analysis
//! crate and the test-suite.

use crate::{ForkId, PhilosopherId, Topology};
use std::collections::{HashMap, HashSet, VecDeque};

/// Per-fork degree statistics of a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeStats {
    /// Smallest number of philosophers sharing a fork.
    pub min: usize,
    /// Largest number of philosophers sharing a fork.
    pub max: usize,
    /// Sum of degrees (always `2 * n`).
    pub total: usize,
    /// Histogram: `histogram[d]` is the number of forks of degree `d`.
    pub histogram: Vec<usize>,
}

/// Computes degree statistics for `topology`.
///
/// ```
/// use gdp_topology::{analysis, builders};
/// let stats = analysis::degree_stats(&builders::figure1_triangle());
/// assert_eq!(stats.min, 4);
/// assert_eq!(stats.max, 4);
/// assert_eq!(stats.total, 12);
/// ```
#[must_use]
pub fn degree_stats(topology: &Topology) -> DegreeStats {
    let degrees: Vec<usize> = topology
        .fork_ids()
        .map(|f| topology.fork_degree(f))
        .collect();
    let min = degrees.iter().copied().min().unwrap_or(0);
    let max = degrees.iter().copied().max().unwrap_or(0);
    let total = degrees.iter().sum();
    let mut histogram = vec![0usize; max + 1];
    for d in degrees {
        histogram[d] += 1;
    }
    DegreeStats {
        min,
        max,
        total,
        histogram,
    }
}

/// Returns `true` if the fork graph is connected (ignoring isolated forks is
/// **not** done: a fork with no philosophers makes the graph disconnected).
#[must_use]
pub fn is_connected(topology: &Topology) -> bool {
    connected_components(topology).len() == 1
}

/// Partition of the forks into connected components (each component is a
/// sorted vector of fork identifiers).  Components are returned in order of
/// their smallest fork.
#[must_use]
pub fn connected_components(topology: &Topology) -> Vec<Vec<ForkId>> {
    let k = topology.num_forks();
    let mut seen = vec![false; k];
    let mut components = Vec::new();
    for start in topology.fork_ids() {
        if seen[start.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(start);
        seen[start.index()] = true;
        while let Some(f) = queue.pop_front() {
            component.push(f);
            for &p in topology.philosophers_at(f) {
                let g = topology.other_fork(p, f);
                if !seen[g.index()] {
                    seen[g.index()] = true;
                    queue.push_back(g);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Returns `true` if the topology contains at least one cycle (a ring), i.e.
/// it is not a forest.  Parallel arcs count as a cycle of length two.
#[must_use]
pub fn has_cycle(topology: &Topology) -> bool {
    // A multigraph is a forest iff every connected component satisfies
    // |arcs| = |nodes| - 1.
    let components = connected_components(topology);
    let mut arcs_per_component: HashMap<usize, usize> = HashMap::new();
    let mut component_of: Vec<usize> = vec![0; topology.num_forks()];
    for (ci, comp) in components.iter().enumerate() {
        for f in comp {
            component_of[f.index()] = ci;
        }
    }
    for p in topology.philosopher_ids() {
        let ends = topology.forks_of(p);
        *arcs_per_component
            .entry(component_of[ends.left.index()])
            .or_insert(0) += 1;
    }
    components.iter().enumerate().any(|(ci, comp)| {
        let arcs = arcs_per_component.get(&ci).copied().unwrap_or(0);
        arcs >= comp.len()
    })
}

/// A simple cycle in the topology, given as the sequence of philosophers
/// (arcs) traversed.  The cycle has no repeated forks and no repeated
/// philosophers; a pair of parallel philosophers forms a cycle of length 2.
pub type Cycle = Vec<PhilosopherId>;

/// Enumerates simple cycles of the topology, up to `limit` cycles.
///
/// The enumeration is exhaustive when the topology is small (the number of
/// simple cycles can be exponential, hence the explicit `limit`).  Cycles are
/// reported once, in a canonical orientation (starting from their smallest
/// philosopher identifier).
#[must_use]
pub fn enumerate_cycles(topology: &Topology, limit: usize) -> Vec<Cycle> {
    let mut found: Vec<Cycle> = Vec::new();
    let mut seen: HashSet<Vec<PhilosopherId>> = HashSet::new();

    // DFS from every fork; standard simple-cycle enumeration on small graphs.
    // A cycle is recorded when we return to the start fork with length >= 2.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        topology: &Topology,
        start: ForkId,
        current: ForkId,
        arc_path: &mut Vec<PhilosopherId>,
        fork_path: &mut Vec<ForkId>,
        found: &mut Vec<Cycle>,
        seen: &mut HashSet<Vec<PhilosopherId>>,
        limit: usize,
    ) {
        if found.len() >= limit {
            return;
        }
        for &p in topology.philosophers_at(current) {
            if arc_path.contains(&p) {
                continue;
            }
            let next = topology.other_fork(p, current);
            if next == start && !arc_path.is_empty() {
                let mut cycle = arc_path.clone();
                cycle.push(p);
                if cycle.len() >= 2 {
                    let canon = canonical_cycle(&cycle);
                    if seen.insert(canon.clone()) {
                        found.push(canon);
                        if found.len() >= limit {
                            return;
                        }
                    }
                }
                continue;
            }
            if fork_path.contains(&next) || next == start {
                continue;
            }
            // Only extend with forks larger than start to avoid re-discovering
            // the same cycle from every one of its forks.
            if next.index() < start.index() {
                continue;
            }
            arc_path.push(p);
            fork_path.push(next);
            dfs(
                topology, start, next, arc_path, fork_path, found, seen, limit,
            );
            arc_path.pop();
            fork_path.pop();
        }
    }

    for start in topology.fork_ids() {
        if found.len() >= limit {
            break;
        }
        let mut arc_path = Vec::new();
        let mut fork_path = Vec::new();
        dfs(
            topology,
            start,
            start,
            &mut arc_path,
            &mut fork_path,
            &mut found,
            &mut seen,
            limit,
        );
    }
    found
}

fn canonical_cycle(cycle: &[PhilosopherId]) -> Vec<PhilosopherId> {
    // Canonical form: the lexicographically smallest rotation of the smaller
    // of the two traversal directions.
    let mut best: Option<Vec<PhilosopherId>> = None;
    let n = cycle.len();
    let mut consider = |candidate: Vec<PhilosopherId>| {
        if best.as_ref().is_none_or(|b| candidate < *b) {
            best = Some(candidate);
        }
    };
    for dir in 0..2 {
        let seq: Vec<PhilosopherId> = if dir == 0 {
            cycle.to_vec()
        } else {
            cycle.iter().rev().copied().collect()
        };
        for shift in 0..n {
            let rotated: Vec<PhilosopherId> = (0..n).map(|i| seq[(i + shift) % n]).collect();
            consider(rotated);
        }
    }
    best.unwrap_or_default()
}

/// Returns the length of a shortest cycle (the girth), or `None` if the
/// topology is a forest.  Parallel arcs give girth 2.
#[must_use]
pub fn girth(topology: &Topology) -> Option<usize> {
    enumerate_cycles(topology, 100_000)
        .iter()
        .map(Vec::len)
        .min()
}

/// Decision procedure for the precondition of **Theorem 1**: the topology
/// contains a ring one of whose forks has at least three incident
/// philosophers.
///
/// Equivalently: some fork of degree ≥ 3 lies on a cycle.
///
/// ```
/// use gdp_topology::{analysis, builders};
/// // The classic ring is *not* covered by Theorem 1 (every fork has degree 2).
/// assert!(!analysis::theorem1_applies(&builders::classic_ring(6).unwrap()));
/// // The Figure 2 system is.
/// assert!(analysis::theorem1_applies(&builders::figure2_hexagon_with_pendant()));
/// ```
#[must_use]
pub fn theorem1_applies(topology: &Topology) -> bool {
    let on_cycle = forks_on_some_cycle(topology);
    topology
        .fork_ids()
        .any(|f| topology.fork_degree(f) >= 3 && on_cycle.contains(&f))
}

/// Decision procedure for the precondition of **Theorem 2**: two forks of a
/// ring are connected by at least three internally disjoint paths, i.e. the
/// topology contains a *theta* subgraph.
///
/// A multigraph contains a theta subgraph iff some biconnected component has
/// strictly more arcs than forks (a biconnected component that is exactly a
/// simple cycle has the same number of each).
///
/// ```
/// use gdp_topology::{analysis, builders};
/// assert!(!analysis::theorem2_applies(&builders::classic_ring(6).unwrap()));
/// assert!(!analysis::theorem2_applies(&builders::figure2_hexagon_with_pendant()));
/// assert!(analysis::theorem2_applies(&builders::figure3_theta()));
/// assert!(analysis::theorem2_applies(&builders::figure1_triangle()));
/// ```
#[must_use]
pub fn theorem2_applies(topology: &Topology) -> bool {
    biconnected_components(topology).iter().any(|comp| {
        let forks: HashSet<ForkId> = comp
            .iter()
            .flat_map(|&p| topology.forks_of(p).as_array())
            .collect();
        comp.len() > forks.len()
    })
}

/// The set of forks that lie on at least one cycle.
#[must_use]
pub fn forks_on_some_cycle(topology: &Topology) -> HashSet<ForkId> {
    let mut result = HashSet::new();
    for comp in biconnected_components(topology) {
        if comp.len() < 2 {
            // A single-arc component is a bridge, not a cycle...
            // unless it is a parallel arc, which the decomposition below
            // reports as a component of >= 2 arcs anyway.
            continue;
        }
        for p in comp {
            let ends = topology.forks_of(p);
            result.insert(ends.left);
            result.insert(ends.right);
        }
    }
    result
}

/// Biconnected components of the topology, each given as a vector of
/// philosophers (arcs).  Bridges appear as singleton components.
///
/// Implemented with the classical Hopcroft–Tarjan low-point algorithm,
/// adapted to multigraphs (parallel arcs are honoured: two parallel
/// philosophers form a biconnected component of size two).
#[must_use]
pub fn biconnected_components(topology: &Topology) -> Vec<Vec<PhilosopherId>> {
    let k = topology.num_forks();
    let mut disc = vec![usize::MAX; k];
    let mut low = vec![usize::MAX; k];
    let mut timer = 0usize;
    let mut arc_stack: Vec<PhilosopherId> = Vec::new();
    let mut components: Vec<Vec<PhilosopherId>> = Vec::new();
    let mut visited_arc = vec![false; topology.num_philosophers()];

    // Iterative DFS to avoid recursion-depth issues on long rings.
    #[derive(Clone, Copy)]
    struct Frame {
        fork: ForkId,
        parent_arc: Option<PhilosopherId>,
        next_incident: usize,
    }

    for root in topology.fork_ids() {
        if disc[root.index()] != usize::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            fork: root,
            parent_arc: None,
            next_incident: 0,
        }];
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;

        while let Some(frame) = stack.last_mut() {
            let u = frame.fork;
            let incident = topology.philosophers_at(u);
            if frame.next_incident < incident.len() {
                let p = incident[frame.next_incident];
                frame.next_incident += 1;
                if Some(p) == frame.parent_arc || visited_arc[p.index()] {
                    continue;
                }
                let v = topology.other_fork(p, u);
                visited_arc[p.index()] = true;
                arc_stack.push(p);
                if disc[v.index()] == usize::MAX {
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push(Frame {
                        fork: v,
                        parent_arc: Some(p),
                        next_incident: 0,
                    });
                } else {
                    // Back arc.
                    let lu = low[u.index()].min(disc[v.index()]);
                    low[u.index()] = lu;
                }
            } else {
                // Finished u: propagate low point to parent and maybe pop a
                // biconnected component.
                let finished = *frame;
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let parent = parent_frame.fork;
                    let parent_low = low[parent.index()].min(low[finished.fork.index()]);
                    low[parent.index()] = parent_low;
                    if low[finished.fork.index()] >= disc[parent.index()] {
                        // `parent` is an articulation point (or the root):
                        // pop the component ending at the tree arc into `finished`.
                        let mut component = Vec::new();
                        while let Some(&top) = arc_stack.last() {
                            arc_stack.pop();
                            component.push(top);
                            if Some(top) == finished.parent_arc {
                                break;
                            }
                        }
                        if !component.is_empty() {
                            component.sort_unstable();
                            components.push(component);
                        }
                    }
                } else if !arc_stack.is_empty() {
                    // Root of the DFS tree: flush whatever remains.
                    let mut component: Vec<PhilosopherId> = std::mem::take(&mut arc_stack);
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Breadth-first shortest path (in number of philosophers) between two forks,
/// or `None` if they are in different components.
#[must_use]
pub fn fork_distance(topology: &Topology, from: ForkId, to: ForkId) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; topology.num_forks()];
    dist[from.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(f) = queue.pop_front() {
        for &p in topology.philosophers_at(f) {
            let g = topology.other_fork(p, f);
            if dist[g.index()] == usize::MAX {
                dist[g.index()] = dist[f.index()] + 1;
                if g == to {
                    return Some(dist[g.index()]);
                }
                queue.push_back(g);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{
        classic_ring, complete_conflict, figure1_gallery, figure1_triangle,
        figure2_hexagon_with_pendant, figure3_theta, path, ring_with_chord, star, ChordTarget,
    };
    use crate::Topology;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn degree_stats_on_star() {
        let s = star(4).unwrap();
        let stats = degree_stats(&s);
        assert_eq!(stats.max, 4);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.total, 8);
        assert_eq!(stats.histogram[1], 4);
        assert_eq!(stats.histogram[4], 1);
    }

    #[test]
    fn connectivity_detection() {
        assert!(is_connected(&classic_ring(5).unwrap()));
        assert!(is_connected(&figure3_theta()));
        let disconnected = Topology::from_arcs(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!is_connected(&disconnected));
        assert_eq!(connected_components(&disconnected).len(), 2);
    }

    #[test]
    fn cycle_detection() {
        assert!(has_cycle(&classic_ring(3).unwrap()));
        assert!(has_cycle(&figure1_triangle()));
        assert!(!has_cycle(&path(5).unwrap()));
        assert!(!has_cycle(&star(6).unwrap()));
        // Two parallel arcs are a cycle of length 2.
        let parallel = Topology::from_arcs(2, [(0, 1), (1, 0)]).unwrap();
        assert!(has_cycle(&parallel));
        assert_eq!(girth(&parallel), Some(2));
    }

    #[test]
    fn cycle_enumeration_on_classic_ring() {
        let ring = classic_ring(6).unwrap();
        let cycles = enumerate_cycles(&ring, 100);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 6);
    }

    #[test]
    fn cycle_enumeration_on_triangle6() {
        // The 6/3 triangle has parallel-arc 2-cycles (3 of them), triangles
        // mixing one arc per fork pair (2^3 = 8 of them) and no longer simple
        // cycles, for a total of 11.
        let t = figure1_triangle();
        let cycles = enumerate_cycles(&t, 1000);
        let two_cycles = cycles.iter().filter(|c| c.len() == 2).count();
        let three_cycles = cycles.iter().filter(|c| c.len() == 3).count();
        assert_eq!(two_cycles, 3);
        assert_eq!(three_cycles, 8);
        assert_eq!(cycles.len(), 11);
        assert_eq!(girth(&t), Some(2));
    }

    #[test]
    fn cycle_limit_is_respected() {
        let t = complete_conflict(6).unwrap();
        let cycles = enumerate_cycles(&t, 5);
        assert_eq!(cycles.len(), 5);
    }

    #[test]
    fn theorem1_precondition() {
        // Classic rings and trees: not covered.
        assert!(!theorem1_applies(&classic_ring(8).unwrap()));
        assert!(!theorem1_applies(&path(5).unwrap()));
        assert!(!theorem1_applies(&star(5).unwrap()));
        // Ring + pendant chord (Figure 2): covered.
        assert!(theorem1_applies(&figure2_hexagon_with_pendant()));
        // Ring + internal chord: covered.
        assert!(theorem1_applies(
            &ring_with_chord(6, ChordTarget::RingNode { offset: 3 }).unwrap()
        ));
        // Theta graph and the Figure 1 systems: covered (they have high-degree
        // forks on cycles).
        assert!(theorem1_applies(&figure3_theta()));
        for (name, t) in figure1_gallery() {
            assert!(
                theorem1_applies(&t),
                "{name} should satisfy Theorem 1 precondition"
            );
        }
    }

    #[test]
    fn theorem2_precondition() {
        assert!(!theorem2_applies(&classic_ring(8).unwrap()));
        assert!(!theorem2_applies(&path(4).unwrap()));
        // A ring with a pendant chord has no theta subgraph.
        assert!(!theorem2_applies(&figure2_hexagon_with_pendant()));
        // A ring with an internal chord does.
        assert!(theorem2_applies(
            &ring_with_chord(6, ChordTarget::RingNode { offset: 3 }).unwrap()
        ));
        assert!(theorem2_applies(&figure3_theta()));
        assert!(theorem2_applies(&figure1_triangle()));
        assert!(theorem2_applies(&complete_conflict(4).unwrap()));
    }

    #[test]
    fn theorem2_implies_theorem1() {
        // Structurally, a theta subgraph always contains a ring with a
        // degree-3 node, so every Theorem-2 instance is a Theorem-1 instance.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..200 {
            let t = crate::builders::random_multigraph(6, 9, &mut rng).unwrap();
            if theorem2_applies(&t) {
                assert!(theorem1_applies(&t), "theta implies ring+degree-3: {t:?}");
            }
        }
    }

    #[test]
    fn biconnected_components_of_figure2() {
        let t = figure2_hexagon_with_pendant();
        let comps = biconnected_components(&t);
        // One component for the 6-cycle and one bridge (the pendant chord).
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = comps.iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 6]);
    }

    #[test]
    fn biconnected_components_cover_every_arc_exactly_once() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let t = crate::builders::random_multigraph(7, 11, &mut rng).unwrap();
            let comps = biconnected_components(&t);
            let mut count = vec![0usize; t.num_philosophers()];
            for comp in comps {
                for p in comp {
                    count[p.index()] += 1;
                }
            }
            assert!(
                count.iter().all(|&c| c == 1),
                "each arc in exactly one component: {count:?}"
            );
        }
    }

    #[test]
    fn fork_distance_on_ring() {
        let ring = classic_ring(8).unwrap();
        assert_eq!(
            fork_distance(&ring, ForkId::new(0), ForkId::new(0)),
            Some(0)
        );
        assert_eq!(
            fork_distance(&ring, ForkId::new(0), ForkId::new(3)),
            Some(3)
        );
        assert_eq!(
            fork_distance(&ring, ForkId::new(0), ForkId::new(5)),
            Some(3)
        );
        let disconnected = Topology::from_arcs(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            fork_distance(&disconnected, ForkId::new(0), ForkId::new(3)),
            None
        );
    }

    // Property-style sweeps over seeded / exhaustive parameter grids (the
    // offline replacement for the former proptest strategies).

    #[test]
    fn prop_connected_components_partition_forks() {
        use rand::Rng;
        let mut param_rng = ChaCha8Rng::seed_from_u64(0xC0_FFEE);
        for seed in 0u64..200 {
            let forks = param_rng.gen_range(2usize..10);
            let phils = param_rng.gen_range(1usize..15);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let t = crate::builders::random_multigraph(forks, phils, &mut rng).unwrap();
            let comps = connected_components(&t);
            let total: usize = comps.iter().map(Vec::len).sum();
            assert_eq!(total, t.num_forks());
        }
    }

    #[test]
    fn prop_girth_at_least_two() {
        for seed in 0u64..200 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let t = crate::builders::random_multigraph(6, 8, &mut rng).unwrap();
            if let Some(g) = girth(&t) {
                assert!(g >= 2, "seed {seed}: girth {g}");
            }
        }
    }

    #[test]
    fn prop_classic_ring_never_triggers_negative_theorems() {
        for n in 3usize..32 {
            let t = classic_ring(n).unwrap();
            assert!(!theorem1_applies(&t), "ring {n}");
            assert!(!theorem2_applies(&t), "ring {n}");
        }
    }
}
