//! # gdp-topology
//!
//! Conflict-topology model for the *generalized dining philosophers problem*
//! of Herescu & Palamidessi (PODC 2001).
//!
//! The paper models a system as an undirected **multigraph** in which
//!
//! * the **nodes are the forks** (shared resources), and
//! * the **arcs are the philosophers** (processes): each philosopher is an
//!   arc connecting the two forks it needs in order to eat.
//!
//! Unlike the classic problem, a fork may be shared by an arbitrary positive
//! number of philosophers, the number of philosophers `n` and the number of
//! forks `k` may differ, and parallel arcs (two philosophers competing for
//! exactly the same pair of forks) are allowed.  The only structural
//! constraints, taken from Definition 1 of the paper, are:
//!
//! * `k >= 2` — there are at least two forks,
//! * `n >= 1` — there is at least one philosopher,
//! * every philosopher connects two *distinct* forks.
//!
//! This crate provides:
//!
//! * [`Topology`] — the validated multigraph, with adjacency queries in both
//!   directions (fork → incident philosophers, philosopher → adjacent forks
//!   and neighbouring philosophers);
//! * [`TopologyBuilder`] — incremental construction with validation;
//! * [`builders`] — the classic ring, the Figure 1 gallery of the paper, the
//!   ring-with-chord family used by Theorem 1, the theta graphs used by
//!   Theorem 2, and random multigraph generators;
//! * [`analysis`] — structural analysis: degrees, connectivity, cycle
//!   enumeration, and decision procedures for the preconditions of
//!   Theorems 1 and 2;
//! * [`symmetry`] — orientation-preserving automorphism enumeration, the
//!   topology half of `gdp-mcheck`'s symmetry quotient;
//! * [`dot`] — Graphviz export for visual inspection of a topology.
//!
//! ## Example
//!
//! ```
//! use gdp_topology::builders::classic_ring;
//!
//! // The classic table with 5 philosophers and 5 forks.
//! let table = classic_ring(5).expect("5-ring is a valid topology");
//! assert_eq!(table.num_philosophers(), 5);
//! assert_eq!(table.num_forks(), 5);
//! // Every fork on the classic table is shared by exactly two philosophers.
//! assert!(table.fork_ids().all(|f| table.philosophers_at(f).len() == 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builders;
pub mod dot;
mod error;
mod ids;
pub mod symmetry;
mod topology;

pub use error::TopologyError;
pub use ids::{ForkId, PhilosopherId};
pub use symmetry::{automorphisms, Automorphism};
pub use topology::{ForkEnds, Side, Topology, TopologyBuilder};

/// Convenience result alias used throughout this crate.
pub type Result<T, E = TopologyError> = std::result::Result<T, E>;
