//! The validated conflict multigraph: forks as nodes, philosophers as arcs.

use crate::{ForkId, PhilosopherId, Result, TopologyError};
use std::fmt;

/// The side (as seen by a philosopher) on which one of its forks sits.
///
/// The paper's algorithms are phrased in terms of a `left` and a `right`
/// fork.  The assignment of sides is arbitrary but fixed per philosopher; it
/// carries no global meaning (two philosophers sharing a fork may see it on
/// different sides), which is exactly what keeps the system symmetric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The philosopher's left fork.
    Left,
    /// The philosopher's right fork.
    Right,
}

impl Side {
    /// Returns the opposite side.
    ///
    /// ```
    /// use gdp_topology::Side;
    /// assert_eq!(Side::Left.other(), Side::Right);
    /// assert_eq!(Side::Right.other(), Side::Left);
    /// ```
    #[must_use]
    pub const fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Both sides, in `[Left, Right]` order.
    #[must_use]
    pub const fn both() -> [Side; 2] {
        [Side::Left, Side::Right]
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "left"),
            Side::Right => write!(f, "right"),
        }
    }
}

/// The two forks adjacent to a philosopher.
///
/// This is the arc of the multigraph: an unordered pair of distinct forks,
/// stored with the philosopher's private left/right orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ForkEnds {
    /// The fork the philosopher calls "left".
    pub left: ForkId,
    /// The fork the philosopher calls "right".
    pub right: ForkId,
}

impl ForkEnds {
    /// Creates a new pair of fork endpoints.
    #[must_use]
    pub const fn new(left: ForkId, right: ForkId) -> Self {
        ForkEnds { left, right }
    }

    /// Returns the fork on the given side.
    #[must_use]
    pub const fn on(self, side: Side) -> ForkId {
        match side {
            Side::Left => self.left,
            Side::Right => self.right,
        }
    }

    /// Returns the fork *other than* `fork`.
    ///
    /// # Panics
    ///
    /// Panics if `fork` is neither endpoint; callers obtain `ForkEnds` from a
    /// [`Topology`], so this indicates a programming error.
    #[must_use]
    pub fn other(self, fork: ForkId) -> ForkId {
        if fork == self.left {
            self.right
        } else if fork == self.right {
            self.left
        } else {
            panic!("fork {fork} is not an endpoint of this arc ({self:?})")
        }
    }

    /// Returns which side `fork` is on, or `None` if it is not an endpoint.
    #[must_use]
    pub fn side_of(self, fork: ForkId) -> Option<Side> {
        if fork == self.left {
            Some(Side::Left)
        } else if fork == self.right {
            Some(Side::Right)
        } else {
            None
        }
    }

    /// Returns `true` if `fork` is one of the two endpoints.
    #[must_use]
    pub fn contains(self, fork: ForkId) -> bool {
        fork == self.left || fork == self.right
    }

    /// Returns the two endpoints as an array `[left, right]`.
    #[must_use]
    pub const fn as_array(self) -> [ForkId; 2] {
        [self.left, self.right]
    }
}

/// A validated generalized dining philosophers topology.
///
/// `Topology` is an immutable undirected multigraph whose nodes are forks
/// and whose arcs are philosophers (Definition 1 of the paper).  It stores
/// the arc list together with a fork-indexed incidence list, so adjacency
/// queries in both directions are `O(1)` / `O(degree)`.
///
/// Construct one with [`Topology::builder`], [`Topology::from_arcs`], or one
/// of the generators in [`crate::builders`].
///
/// ```
/// use gdp_topology::{Topology, ForkId};
///
/// // Two philosophers competing for the same pair of forks (a parallel arc):
/// // a legal *generalized* system that is impossible in the classic setting.
/// let t = Topology::from_arcs(2, [(0, 1), (0, 1)])?;
/// assert_eq!(t.num_philosophers(), 2);
/// assert_eq!(t.philosophers_at(ForkId::new(0)).len(), 2);
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    num_forks: usize,
    arcs: Vec<ForkEnds>,
    /// For each fork, the philosophers incident on it, in increasing id order.
    incidence: Vec<Vec<PhilosopherId>>,
}

impl Topology {
    /// Starts building a topology incrementally.
    #[must_use]
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::new()
    }

    /// Builds a topology from a fork count and an iterator of `(left, right)`
    /// fork indices, one pair per philosopher.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two forks are declared, no philosopher
    /// is declared, an endpoint index is out of range, or a philosopher's two
    /// endpoints coincide.
    pub fn from_arcs<I>(num_forks: usize, arcs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut builder = TopologyBuilder::new();
        builder.add_forks(num_forks);
        for (left, right) in arcs {
            builder.add_philosopher(ForkId::new(left), ForkId::new(right));
        }
        builder.build()
    }

    /// Number of forks `k` in the system.
    #[must_use]
    pub fn num_forks(&self) -> usize {
        self.num_forks
    }

    /// Number of philosophers `n` in the system.
    #[must_use]
    pub fn num_philosophers(&self) -> usize {
        self.arcs.len()
    }

    /// Iterator over all fork identifiers, in increasing order.
    pub fn fork_ids(&self) -> impl Iterator<Item = ForkId> + '_ {
        (0..self.num_forks as u32).map(ForkId::new)
    }

    /// Iterator over all philosopher identifiers, in increasing order.
    pub fn philosopher_ids(&self) -> impl Iterator<Item = PhilosopherId> + '_ {
        (0..self.arcs.len() as u32).map(PhilosopherId::new)
    }

    /// The two forks adjacent to `philosopher`.
    ///
    /// # Panics
    ///
    /// Panics if `philosopher` is out of range for this topology.
    #[must_use]
    pub fn forks_of(&self, philosopher: PhilosopherId) -> ForkEnds {
        self.arcs[philosopher.index()]
    }

    /// The fork on the given `side` of `philosopher`.
    ///
    /// # Panics
    ///
    /// Panics if `philosopher` is out of range for this topology.
    #[must_use]
    pub fn fork_on(&self, philosopher: PhilosopherId, side: Side) -> ForkId {
        self.forks_of(philosopher).on(side)
    }

    /// Given one fork of `philosopher`, returns the other one.
    ///
    /// # Panics
    ///
    /// Panics if `philosopher` is out of range or `fork` is not adjacent to it.
    #[must_use]
    pub fn other_fork(&self, philosopher: PhilosopherId, fork: ForkId) -> ForkId {
        self.forks_of(philosopher).other(fork)
    }

    /// The philosophers incident on `fork` (the philosophers that share it),
    /// in increasing identifier order.
    ///
    /// # Panics
    ///
    /// Panics if `fork` is out of range for this topology.
    #[must_use]
    pub fn philosophers_at(&self, fork: ForkId) -> &[PhilosopherId] {
        &self.incidence[fork.index()]
    }

    /// Number of philosophers sharing `fork` (the degree of the node).
    ///
    /// # Panics
    ///
    /// Panics if `fork` is out of range for this topology.
    #[must_use]
    pub fn fork_degree(&self, fork: ForkId) -> usize {
        self.incidence[fork.index()].len()
    }

    /// The neighbours of `philosopher`: every *other* philosopher that shares
    /// at least one fork with it, without duplicates, in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `philosopher` is out of range for this topology.
    #[must_use]
    pub fn neighbours(&self, philosopher: PhilosopherId) -> Vec<PhilosopherId> {
        let ends = self.forks_of(philosopher);
        let mut out: Vec<PhilosopherId> = self
            .philosophers_at(ends.left)
            .iter()
            .chain(self.philosophers_at(ends.right).iter())
            .copied()
            .filter(|&p| p != philosopher)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Returns `true` if `a` and `b` are distinct philosophers sharing at
    /// least one fork.
    #[must_use]
    pub fn are_neighbours(&self, a: PhilosopherId, b: PhilosopherId) -> bool {
        if a == b {
            return false;
        }
        let ea = self.forks_of(a);
        let eb = self.forks_of(b);
        ea.contains(eb.left) || ea.contains(eb.right)
    }

    /// Maximum number of philosophers sharing any single fork.
    ///
    /// In the classic problem this is exactly 2; the generalization of the
    /// paper is precisely about allowing it to exceed 2.
    #[must_use]
    pub fn max_fork_sharing(&self) -> usize {
        self.incidence.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Returns `true` if this topology is a *classic* dining philosophers
    /// ring: `n == k`, every fork is shared by exactly two philosophers, and
    /// the arcs form a single cycle covering all forks.
    ///
    /// The correctness proofs of Lehmann & Rabin apply exactly to these
    /// topologies (plus the degenerate two-philosopher case).
    #[must_use]
    pub fn is_classic_ring(&self) -> bool {
        if self.num_philosophers() != self.num_forks() {
            return false;
        }
        if !self.incidence.iter().all(|inc| inc.len() == 2) {
            return false;
        }
        // Walk the cycle from fork 0 and check we visit every fork exactly once.
        let start = ForkId::new(0);
        let mut visited_forks = vec![false; self.num_forks];
        let mut visited_arcs = vec![false; self.num_philosophers()];
        let mut current = start;
        let mut count = 0usize;
        loop {
            visited_forks[current.index()] = true;
            count += 1;
            // Find an unvisited arc out of `current`.
            let next_arc = self
                .philosophers_at(current)
                .iter()
                .copied()
                .find(|&p| !visited_arcs[p.index()]);
            match next_arc {
                Some(p) => {
                    visited_arcs[p.index()] = true;
                    current = self.other_fork(p, current);
                    if current == start {
                        break;
                    }
                }
                None => break,
            }
        }
        count == self.num_forks && visited_arcs.iter().all(|&v| v)
    }

    /// All arcs as `(philosopher, left fork, right fork)` triples, in
    /// philosopher order.  Mostly useful for serialization and debugging.
    #[must_use]
    pub fn arcs(&self) -> Vec<(PhilosopherId, ForkId, ForkId)> {
        self.arcs
            .iter()
            .enumerate()
            .map(|(i, ends)| (PhilosopherId::new(i as u32), ends.left, ends.right))
            .collect()
    }

    /// A compact single-line human-readable summary such as
    /// `"topology(n=6, k=3, max_sharing=4)"`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "topology(n={}, k={}, max_sharing={})",
            self.num_philosophers(),
            self.num_forks(),
            self.max_fork_sharing()
        )
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

/// Incremental builder for [`Topology`].
///
/// ```
/// use gdp_topology::{Topology, TopologyBuilder};
///
/// let mut b = Topology::builder();
/// let f0 = b.add_fork();
/// let f1 = b.add_fork();
/// let f2 = b.add_fork();
/// b.add_philosopher(f0, f1);
/// b.add_philosopher(f1, f2);
/// b.add_philosopher(f2, f0);
/// let triangle = b.build()?;
/// assert_eq!(triangle.num_philosophers(), 3);
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    num_forks: usize,
    arcs: Vec<ForkEnds>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Declares one new fork and returns its identifier.
    pub fn add_fork(&mut self) -> ForkId {
        let id = ForkId::new(self.num_forks as u32);
        self.num_forks += 1;
        id
    }

    /// Declares `count` new forks and returns their identifiers in order.
    pub fn add_forks(&mut self, count: usize) -> Vec<ForkId> {
        (0..count).map(|_| self.add_fork()).collect()
    }

    /// Declares a philosopher adjacent to forks `left` and `right` and
    /// returns its identifier.
    ///
    /// Validation (distinctness, range) is deferred to [`build`](Self::build)
    /// so that builders can be composed freely.
    pub fn add_philosopher(&mut self, left: ForkId, right: ForkId) -> PhilosopherId {
        let id = PhilosopherId::new(self.arcs.len() as u32);
        self.arcs.push(ForkEnds::new(left, right));
        id
    }

    /// Number of forks declared so far.
    #[must_use]
    pub fn num_forks(&self) -> usize {
        self.num_forks
    }

    /// Number of philosophers declared so far.
    #[must_use]
    pub fn num_philosophers(&self) -> usize {
        self.arcs.len()
    }

    /// Validates the declared system and produces an immutable [`Topology`].
    ///
    /// # Errors
    ///
    /// * [`TopologyError::TooFewForks`] if fewer than two forks were declared;
    /// * [`TopologyError::NoPhilosophers`] if no philosopher was declared;
    /// * [`TopologyError::UnknownFork`] if a philosopher references an
    ///   undeclared fork;
    /// * [`TopologyError::DegenerateArc`] if a philosopher's two forks coincide.
    pub fn build(self) -> Result<Topology> {
        if self.num_forks < 2 {
            return Err(TopologyError::TooFewForks {
                found: self.num_forks,
            });
        }
        if self.arcs.is_empty() {
            return Err(TopologyError::NoPhilosophers);
        }
        for (i, ends) in self.arcs.iter().enumerate() {
            let philosopher = PhilosopherId::new(i as u32);
            for fork in ends.as_array() {
                if fork.index() >= self.num_forks {
                    return Err(TopologyError::UnknownFork { philosopher, fork });
                }
            }
            if ends.left == ends.right {
                return Err(TopologyError::DegenerateArc {
                    philosopher,
                    fork: ends.left,
                });
            }
        }
        let mut incidence = vec![Vec::new(); self.num_forks];
        for (i, ends) in self.arcs.iter().enumerate() {
            let p = PhilosopherId::new(i as u32);
            incidence[ends.left.index()].push(p);
            incidence[ends.right.index()].push(p);
        }
        Ok(Topology {
            num_forks: self.num_forks,
            arcs: self.arcs,
            incidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle6() -> Topology {
        // The leftmost system of Figure 1: 3 forks, 6 philosophers, each pair
        // of forks shared by two parallel philosophers.
        Topology::from_arcs(3, [(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]).unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = Topology::builder();
        let forks = b.add_forks(4);
        assert_eq!(forks, (0..4).map(ForkId::new).collect::<Vec<_>>());
        let p0 = b.add_philosopher(forks[0], forks[1]);
        let p1 = b.add_philosopher(forks[1], forks[2]);
        assert_eq!(p0, PhilosopherId::new(0));
        assert_eq!(p1, PhilosopherId::new(1));
        let t = b.build().unwrap();
        assert_eq!(t.num_forks(), 4);
        assert_eq!(t.num_philosophers(), 2);
    }

    #[test]
    fn rejects_too_few_forks() {
        let mut b = Topology::builder();
        b.add_fork();
        b.add_philosopher(ForkId::new(0), ForkId::new(0));
        assert!(matches!(
            b.build(),
            Err(TopologyError::TooFewForks { found: 1 })
        ));
    }

    #[test]
    fn rejects_no_philosophers() {
        let mut b = Topology::builder();
        b.add_forks(3);
        assert!(matches!(b.build(), Err(TopologyError::NoPhilosophers)));
    }

    #[test]
    fn rejects_degenerate_arc() {
        let result = Topology::from_arcs(3, [(0, 0)]);
        assert!(matches!(
            result,
            Err(TopologyError::DegenerateArc { fork, .. }) if fork == ForkId::new(0)
        ));
    }

    #[test]
    fn rejects_unknown_fork() {
        let result = Topology::from_arcs(2, [(0, 5)]);
        assert!(matches!(
            result,
            Err(TopologyError::UnknownFork { fork, .. }) if fork == ForkId::new(5)
        ));
    }

    #[test]
    fn incidence_lists_are_consistent_with_arcs() {
        let t = triangle6();
        for p in t.philosopher_ids() {
            let ends = t.forks_of(p);
            assert!(t.philosophers_at(ends.left).contains(&p));
            assert!(t.philosophers_at(ends.right).contains(&p));
        }
        // Total incidence = 2 * number of philosophers.
        let total: usize = t.fork_ids().map(|f| t.fork_degree(f)).sum();
        assert_eq!(total, 2 * t.num_philosophers());
    }

    #[test]
    fn triangle6_has_sharing_degree_four() {
        let t = triangle6();
        assert_eq!(t.num_forks(), 3);
        assert_eq!(t.num_philosophers(), 6);
        assert_eq!(t.max_fork_sharing(), 4);
        assert!(!t.is_classic_ring());
    }

    #[test]
    fn other_fork_and_sides() {
        let t = triangle6();
        let p = PhilosopherId::new(0);
        let ends = t.forks_of(p);
        assert_eq!(t.other_fork(p, ends.left), ends.right);
        assert_eq!(t.other_fork(p, ends.right), ends.left);
        assert_eq!(ends.side_of(ends.left), Some(Side::Left));
        assert_eq!(ends.side_of(ends.right), Some(Side::Right));
        assert_eq!(ends.side_of(ForkId::new(99)), None);
        assert_eq!(t.fork_on(p, Side::Left), ends.left);
        assert_eq!(t.fork_on(p, Side::Right), ends.right);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_fork_panics_on_non_endpoint() {
        let ends = ForkEnds::new(ForkId::new(0), ForkId::new(1));
        let _ = ends.other(ForkId::new(2));
    }

    #[test]
    fn neighbours_in_triangle6() {
        let t = triangle6();
        // Every philosopher in the 6/3 triangle shares a fork with all others
        // except possibly the "opposite" parallel pair... actually each
        // philosopher touches 2 of the 3 forks, and every other philosopher
        // touches 2 of 3, so any two philosophers share at least one fork.
        for p in t.philosopher_ids() {
            let nbrs = t.neighbours(p);
            assert_eq!(nbrs.len(), 5, "philosopher {p} should neighbour all others");
            assert!(!nbrs.contains(&p));
        }
    }

    #[test]
    fn are_neighbours_is_symmetric_and_irreflexive() {
        let t = triangle6();
        for a in t.philosopher_ids() {
            assert!(!t.are_neighbours(a, a));
            for b in t.philosopher_ids() {
                assert_eq!(t.are_neighbours(a, b), t.are_neighbours(b, a));
            }
        }
    }

    #[test]
    fn classic_ring_detection() {
        let ring5 = Topology::from_arcs(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert!(ring5.is_classic_ring());
        assert_eq!(ring5.max_fork_sharing(), 2);

        // Two disjoint triangles: n == k and every fork has degree 2, but the
        // arcs do not form a single covering cycle.
        let two_triangles =
            Topology::from_arcs(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        assert!(!two_triangles.is_classic_ring());

        assert!(!triangle6().is_classic_ring());
    }

    #[test]
    fn parallel_arcs_are_allowed() {
        let t = Topology::from_arcs(2, [(0, 1), (0, 1), (1, 0)]).unwrap();
        assert_eq!(t.num_philosophers(), 3);
        assert_eq!(t.fork_degree(ForkId::new(0)), 3);
        assert_eq!(t.fork_degree(ForkId::new(1)), 3);
    }

    #[test]
    fn display_and_summary() {
        let t = triangle6();
        assert_eq!(t.to_string(), "topology(n=6, k=3, max_sharing=4)");
    }

    #[test]
    fn arcs_roundtrip_reconstructs_the_topology() {
        // The `arcs()` listing is a faithful serialization: rebuilding from it
        // yields an identical topology (the offline substitute for the old
        // serde round-trip test).
        let t = triangle6();
        let arcs: Vec<(u32, u32)> = t
            .arcs()
            .iter()
            .map(|&(_, l, r)| (l.raw(), r.raw()))
            .collect();
        let back = Topology::from_arcs(t.num_forks(), arcs).unwrap();
        assert_eq!(t, back);
    }
}
