//! Strongly typed identifiers for forks and philosophers.
//!
//! The simulation, algorithm and analysis crates all address forks and
//! philosophers by index.  Newtypes keep the two index spaces statically
//! distinct (a fork index can never be confused with a philosopher index)
//! while remaining `Copy` and cheap to hash.

use std::fmt;

/// Identifier of a fork (a node of the conflict multigraph).
///
/// Fork identifiers are dense indices `0..k` assigned by the
/// [`TopologyBuilder`](crate::TopologyBuilder) in creation order.
///
/// ```
/// use gdp_topology::ForkId;
/// let f = ForkId::new(3);
/// assert_eq!(f.index(), 3);
/// assert_eq!(format!("{f}"), "f3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ForkId(u32);

impl ForkId {
    /// Creates a fork identifier from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        ForkId(index)
    }

    /// Returns the dense index of this fork, suitable for vector indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value of the identifier.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ForkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ForkId({})", self.0)
    }
}

impl fmt::Display for ForkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u32> for ForkId {
    fn from(value: u32) -> Self {
        ForkId(value)
    }
}

impl From<ForkId> for u32 {
    fn from(value: ForkId) -> Self {
        value.0
    }
}

impl From<ForkId> for usize {
    fn from(value: ForkId) -> Self {
        value.index()
    }
}

/// Identifier of a philosopher (an arc of the conflict multigraph).
///
/// Philosopher identifiers are dense indices `0..n` assigned by the
/// [`TopologyBuilder`](crate::TopologyBuilder) in creation order.
///
/// Identifiers exist for the benefit of the *observer* (the simulator, the
/// adversary, the metrics collector).  The philosophers themselves remain
/// symmetric: the algorithms of this project never branch on the identifier,
/// and the symmetry test-suite checks exactly that.
///
/// ```
/// use gdp_topology::PhilosopherId;
/// let p = PhilosopherId::new(0);
/// assert_eq!(format!("{p}"), "P0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhilosopherId(u32);

impl PhilosopherId {
    /// Creates a philosopher identifier from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        PhilosopherId(index)
    }

    /// Returns the dense index of this philosopher, suitable for vector indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value of the identifier.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for PhilosopherId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhilosopherId({})", self.0)
    }
}

impl fmt::Display for PhilosopherId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for PhilosopherId {
    fn from(value: u32) -> Self {
        PhilosopherId(value)
    }
}

impl From<PhilosopherId> for u32 {
    fn from(value: PhilosopherId) -> Self {
        value.0
    }
}

impl From<PhilosopherId> for usize {
    fn from(value: PhilosopherId) -> Self {
        value.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fork_id_roundtrip() {
        for i in [0u32, 1, 7, 1024, u32::MAX] {
            let f = ForkId::new(i);
            assert_eq!(f.raw(), i);
            assert_eq!(u32::from(f), i);
            assert_eq!(ForkId::from(i), f);
        }
    }

    #[test]
    fn philosopher_id_roundtrip() {
        for i in [0u32, 1, 7, 1024, u32::MAX] {
            let p = PhilosopherId::new(i);
            assert_eq!(p.raw(), i);
            assert_eq!(u32::from(p), i);
            assert_eq!(PhilosopherId::from(i), p);
        }
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ForkId::new(1) < ForkId::new(2));
        assert!(PhilosopherId::new(0) < PhilosopherId::new(10));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<ForkId> = (0..100).map(ForkId::new).collect();
        assert_eq!(set.len(), 100);
        let set: HashSet<PhilosopherId> = (0..100).map(PhilosopherId::new).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ForkId::new(12).to_string(), "f12");
        assert_eq!(PhilosopherId::new(12).to_string(), "P12");
        assert_eq!(format!("{:?}", ForkId::new(3)), "ForkId(3)");
        assert_eq!(format!("{:?}", PhilosopherId::new(3)), "PhilosopherId(3)");
    }

    #[test]
    fn index_matches_usize_conversion() {
        let f = ForkId::new(9);
        let p = PhilosopherId::new(11);
        assert_eq!(usize::from(f), 9);
        assert_eq!(usize::from(p), 11);
    }
}
