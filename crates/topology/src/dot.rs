//! Graphviz DOT export.
//!
//! The paper communicates topologies and adversary strategies through
//! drawings (Figures 1–3).  [`to_dot`] renders a [`Topology`] in the same
//! convention — forks as nodes, philosophers as labelled edges — so that a
//! reproduction run can be inspected visually with `dot -Tpng`.

use crate::Topology;
use std::fmt::Write as _;

/// Options controlling the DOT rendering.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name used in the `graph <name> { ... }` header.
    pub name: String,
    /// Whether to label each edge with its philosopher identifier.
    pub label_philosophers: bool,
    /// Whether to label each node with its fork identifier.
    pub label_forks: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "gdp".to_string(),
            label_philosophers: true,
            label_forks: true,
        }
    }
}

/// Renders `topology` as an undirected Graphviz graph.
///
/// ```
/// use gdp_topology::{builders, dot};
/// let t = builders::classic_ring(3).unwrap();
/// let rendered = dot::to_dot(&t, &dot::DotOptions::default());
/// assert!(rendered.starts_with("graph gdp {"));
/// assert!(rendered.contains("f0 -- f1"));
/// ```
#[must_use]
pub fn to_dot(topology: &Topology, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", options.name);
    let _ = writeln!(out, "  node [shape=circle, fixedsize=true, width=0.4];");
    for fork in topology.fork_ids() {
        if options.label_forks {
            let _ = writeln!(out, "  {fork} [label=\"{fork}\"];");
        } else {
            let _ = writeln!(out, "  {fork} [label=\"\"];");
        }
    }
    for (philosopher, left, right) in topology.arcs() {
        if options.label_philosophers {
            let _ = writeln!(out, "  {left} -- {right} [label=\"{philosopher}\"];");
        } else {
            let _ = writeln!(out, "  {left} -- {right};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{figure1_triangle, figure3_theta};

    #[test]
    fn dot_output_contains_every_fork_and_philosopher() {
        let t = figure1_triangle();
        let rendered = to_dot(&t, &DotOptions::default());
        for f in t.fork_ids() {
            assert!(rendered.contains(&format!("{f} [label=")));
        }
        for p in t.philosopher_ids() {
            assert!(rendered.contains(&format!("label=\"{p}\"")));
        }
        // Undirected graph syntax.
        assert!(rendered.contains("--"));
        assert!(!rendered.contains("->"));
    }

    #[test]
    fn dot_output_respects_label_options() {
        let t = figure3_theta();
        let rendered = to_dot(
            &t,
            &DotOptions {
                name: "fig3".to_string(),
                label_philosophers: false,
                label_forks: false,
            },
        );
        assert!(rendered.starts_with("graph fig3 {"));
        assert!(!rendered.contains("label=\"P"));
    }

    #[test]
    fn dot_edge_count_matches_philosopher_count() {
        let t = figure3_theta();
        let rendered = to_dot(&t, &DotOptions::default());
        let edges = rendered.matches("--").count();
        assert_eq!(edges, t.num_philosophers());
    }
}
