//! Topology generators.
//!
//! This module contains constructors for every topology the paper discusses:
//!
//! * the **classic ring** (the original Dijkstra table), on which Lehmann &
//!   Rabin's algorithms are correct;
//! * the four example generalized systems of **Figure 1**;
//! * the **ring with a chord** family that witnesses Theorem 1 (LR1 fails);
//! * the **theta graphs** (two nodes joined by three internally disjoint
//!   paths) that witness Theorem 2 (LR2 fails);
//! * auxiliary families (star, path, complete conflict graph) used in the
//!   test-suite and benchmarks;
//! * **random multigraph** generators for the probabilistic sweeps of
//!   experiments E5/E6.
//!
//! All generators return [`Result<Topology>`](crate::Result) and document the
//! parameter ranges they accept.

use crate::{Result, Topology, TopologyError};
use rand::seq::SliceRandom;
use rand::Rng;

fn invalid(message: impl Into<String>) -> TopologyError {
    TopologyError::InvalidParameter {
        message: message.into(),
    }
}

/// The classic dining philosophers table: `n` forks and `n` philosophers
/// alternating around a ring.
///
/// Philosopher `i` is adjacent to forks `i` (its left) and `(i + 1) % n`
/// (its right).
///
/// # Errors
///
/// Returns an error if `n < 2`: with fewer than two philosophers there is no
/// ring (and fewer than two forks violates Definition 1).
///
/// ```
/// use gdp_topology::builders::classic_ring;
/// let t = classic_ring(7)?;
/// assert!(t.is_classic_ring());
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
pub fn classic_ring(n: usize) -> Result<Topology> {
    if n < 2 {
        return Err(invalid(format!(
            "classic ring needs at least 2 philosophers, got {n}"
        )));
    }
    let arcs = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32));
    Topology::from_arcs(n, arcs)
}

/// A ring of `k` forks in which every pair of adjacent forks is contended by
/// `sharing` parallel philosophers.
///
/// With `sharing == 1` this is the classic ring; with `sharing == 2` and
/// `k == 3` it is the leftmost system of Figure 1 (6 philosophers, 3 forks),
/// and with `sharing == 2`, `k == 6` the second system (12 philosophers,
/// 6 forks).
///
/// # Errors
///
/// Returns an error if `k < 2` or `sharing == 0`.
pub fn shared_ring(k: usize, sharing: usize) -> Result<Topology> {
    if k < 2 {
        return Err(invalid(format!(
            "shared ring needs at least 2 forks, got {k}"
        )));
    }
    if sharing == 0 {
        return Err(invalid("sharing factor must be at least 1"));
    }
    let mut arcs = Vec::with_capacity(k * sharing);
    for i in 0..k {
        let left = i as u32;
        let right = ((i + 1) % k) as u32;
        for copy in 0..sharing {
            // Alternate the orientation of parallel philosophers so that the
            // topology stays symmetric but the left/right labels differ,
            // mirroring how the paper draws the Figure 1 systems.
            if copy % 2 == 0 {
                arcs.push((left, right));
            } else {
                arcs.push((right, left));
            }
        }
    }
    Topology::from_arcs(k, arcs)
}

/// Figure 1, leftmost system: **6 philosophers, 3 forks** — a triangle of
/// forks with every edge doubled.
///
/// This is the topology on which Section 3 of the paper constructs the
/// adversary defeating LR1.
pub fn figure1_triangle() -> Topology {
    shared_ring(3, 2).expect("triangle-6 parameters are valid")
}

/// Figure 1, second system: **12 philosophers, 6 forks** — a hexagon of forks
/// with every edge doubled.
pub fn figure1_hexagon() -> Topology {
    shared_ring(6, 2).expect("hexagon-12 parameters are valid")
}

/// Figure 1, third system: **16 philosophers, 12 forks**.
///
/// The figure shows a ring of twelve forks in which the twelve ring
/// philosophers are augmented by four additional philosophers bridging
/// opposite-quadrant forks.  We reproduce it as a 12-ring plus four chords
/// `{0-6, 3-9, 1-7, 4-10}`, which matches the stated counts and keeps the
/// system vertex- and arc-transitive enough for the experiments that use it
/// (the *exact* drawing is not load-bearing for any claim in the paper; any
/// 16-arc/12-fork system with shared forks exhibits the same phenomena).
pub fn figure1_ring12_chords() -> Topology {
    let mut arcs: Vec<(u32, u32)> = (0..12).map(|i| (i as u32, ((i + 1) % 12) as u32)).collect();
    arcs.extend_from_slice(&[(0, 6), (3, 9), (1, 7), (4, 10)]);
    Topology::from_arcs(12, arcs).expect("ring-12 with 4 chords is valid")
}

/// Figure 1, rightmost system: **10 philosophers, 9 forks**.
///
/// We reproduce it as a ring of nine forks (nine philosophers) plus one
/// additional philosopher bridging forks 0 and 3, giving one fork of degree 3
/// — the smallest asymmetric-sharing example of the figure.  As with
/// [`figure1_ring12_chords`], the precise drawing is not load-bearing; the
/// counts and the presence of a fork shared by three philosophers are.
pub fn figure1_ring9_chord() -> Topology {
    let mut arcs: Vec<(u32, u32)> = (0..9).map(|i| (i as u32, ((i + 1) % 9) as u32)).collect();
    arcs.push((0, 3));
    Topology::from_arcs(9, arcs).expect("ring-9 with 1 chord is valid")
}

/// The full Figure 1 gallery in left-to-right order, with the paper's
/// philosopher/fork counts.
///
/// ```
/// let gallery = gdp_topology::builders::figure1_gallery();
/// let counts: Vec<(usize, usize)> = gallery
///     .iter()
///     .map(|(_, t)| (t.num_philosophers(), t.num_forks()))
///     .collect();
/// assert_eq!(counts, vec![(6, 3), (12, 6), (16, 12), (10, 9)]);
/// ```
pub fn figure1_gallery() -> Vec<(&'static str, Topology)> {
    vec![
        ("triangle-6/3", figure1_triangle()),
        ("hexagon-12/6", figure1_hexagon()),
        ("ring12+4chords-16/12", figure1_ring12_chords()),
        ("ring9+chord-10/9", figure1_ring9_chord()),
    ]
}

/// Where the extra philosopher of [`ring_with_chord`] attaches its far end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChordTarget {
    /// The far end is another node of the ring, `offset` steps around from
    /// node 0 (so `offset` must be in `2..ring_size - 1` to avoid creating a
    /// parallel arc with a ring philosopher — parallel arcs are legal but a
    /// different shape than Figure 2 draws).
    RingNode {
        /// Distance around the ring from node 0 to the far endpoint.
        offset: usize,
    },
    /// The far end is a brand-new fork outside the ring, exactly as drawn in
    /// Figure 2 (node `g` need not belong to `H`).
    ExternalFork,
}

/// The Theorem 1 witness family: a ring `H` of `ring_size` forks (and
/// `ring_size` philosophers) plus one extra philosopher `P` incident on ring
/// node 0, so that node 0 has three incident arcs.
///
/// Figure 2 of the paper draws `ring_size == 6` and an external far endpoint
/// `g`; [`ChordTarget::ExternalFork`] reproduces that exactly.  The returned
/// topology places the extra philosopher **last** (identifier
/// `ring_size`), and its shared fork is node `0`; the Theorem 1 adversary in
/// `gdp-adversary` relies on this layout.
///
/// # Errors
///
/// Returns an error if `ring_size < 3`, or if a `RingNode` offset is not in
/// `2..ring_size - 1`.
pub fn ring_with_chord(ring_size: usize, target: ChordTarget) -> Result<Topology> {
    if ring_size < 3 {
        return Err(invalid(format!(
            "ring with chord needs a ring of at least 3 forks, got {ring_size}"
        )));
    }
    let mut arcs: Vec<(u32, u32)> = (0..ring_size)
        .map(|i| (i as u32, ((i + 1) % ring_size) as u32))
        .collect();
    let num_forks = match target {
        ChordTarget::RingNode { offset } => {
            if offset < 2 || offset >= ring_size - 1 {
                return Err(invalid(format!(
                    "chord offset must be in 2..{} to avoid duplicating a ring arc, got {offset}",
                    ring_size - 1
                )));
            }
            arcs.push((0, offset as u32));
            ring_size
        }
        ChordTarget::ExternalFork => {
            arcs.push((0, ring_size as u32));
            ring_size + 1
        }
    };
    Topology::from_arcs(num_forks, arcs)
}

/// The exact system drawn in Figure 2: a hexagonal ring plus one philosopher
/// from ring node 0 to an external fork `g`.
pub fn figure2_hexagon_with_pendant() -> Topology {
    ring_with_chord(6, ChordTarget::ExternalFork).expect("figure 2 parameters are valid")
}

/// The Theorem 2 witness family: a **theta graph**.  Two hub forks are joined
/// by three internally disjoint paths with `len_a`, `len_b` and `len_c`
/// philosophers respectively.
///
/// Any two of the paths form a ring `H`, and the third is the extra path `P`
/// required by Theorem 2.  Fork 0 and fork 1 are the hubs; the interior forks
/// of the paths are numbered consecutively path by path, and the philosophers
/// are numbered along path A, then path B, then path C.
///
/// # Errors
///
/// Returns an error if any path length is zero or if all three lengths are 1
/// (three parallel arcs form a legal multigraph but not the theta graph of
/// Figure 3; use [`Topology::from_arcs`] directly for that shape).
pub fn theta_graph(len_a: usize, len_b: usize, len_c: usize) -> Result<Topology> {
    if len_a == 0 || len_b == 0 || len_c == 0 {
        return Err(invalid(
            "theta graph paths must each contain at least one philosopher",
        ));
    }
    if len_a == 1 && len_b == 1 && len_c == 1 {
        return Err(invalid(
            "a theta graph needs at least one path of length >= 2; three parallel arcs requested",
        ));
    }
    let hub_a = 0u32;
    let hub_b = 1u32;
    let mut next_fork = 2u32;
    let mut arcs = Vec::new();
    for len in [len_a, len_b, len_c] {
        let mut prev = hub_a;
        for step in 0..len {
            let next = if step + 1 == len {
                hub_b
            } else {
                let f = next_fork;
                next_fork += 1;
                f
            };
            arcs.push((prev, next));
            prev = next;
        }
    }
    Topology::from_arcs(next_fork as usize, arcs)
}

/// The system drawn in Figure 3: a hexagonal ring two of whose opposite nodes
/// are additionally joined by a two-philosopher path (a theta graph with path
/// lengths 3, 3 and 2: 8 philosophers, 7 forks).
pub fn figure3_theta() -> Topology {
    theta_graph(3, 3, 2).expect("figure 3 parameters are valid")
}

/// A star: one hub fork shared by `spokes` philosophers, each of which also
/// has a private outer fork.
///
/// Stars are acyclic, so both Lehmann–Rabin algorithms *do* work on them; the
/// test-suite uses them as a contrast class for the Theorem 1/2 preconditions.
///
/// # Errors
///
/// Returns an error if `spokes == 0`.
pub fn star(spokes: usize) -> Result<Topology> {
    if spokes == 0 {
        return Err(invalid("a star needs at least one spoke"));
    }
    let arcs = (0..spokes).map(|i| (0u32, (i + 1) as u32));
    Topology::from_arcs(spokes + 1, arcs)
}

/// A path (open chain) of `k` forks with `k - 1` philosophers.
///
/// # Errors
///
/// Returns an error if `k < 2`.
pub fn path(k: usize) -> Result<Topology> {
    if k < 2 {
        return Err(invalid(format!("a path needs at least 2 forks, got {k}")));
    }
    let arcs = (0..k - 1).map(|i| (i as u32, (i + 1) as u32));
    Topology::from_arcs(k, arcs)
}

/// The complete conflict graph on `k` forks: one philosopher for every
/// unordered pair of forks (`k * (k - 1) / 2` philosophers).
///
/// This is the densest simple topology and the worst case for the
/// symmetry-breaking argument in the proof of Theorem 3 (the probability
/// bound `m!/(mᵏ (m−k)!)` is stated for a complete graph of forks).
///
/// # Errors
///
/// Returns an error if `k < 2`.
pub fn complete_conflict(k: usize) -> Result<Topology> {
    if k < 2 {
        return Err(invalid(format!(
            "a complete conflict graph needs at least 2 forks, got {k}"
        )));
    }
    let mut arcs = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            arcs.push((i as u32, j as u32));
        }
    }
    Topology::from_arcs(k, arcs)
}

/// A uniformly random multigraph with `num_forks` forks and
/// `num_philosophers` philosophers; each philosopher independently picks an
/// ordered pair of distinct forks uniformly at random.
///
/// The result may be disconnected; use [`random_connected`] when a connected
/// conflict graph is required.
///
/// # Errors
///
/// Returns an error if `num_forks < 2` or `num_philosophers == 0`.
pub fn random_multigraph<R: Rng + ?Sized>(
    num_forks: usize,
    num_philosophers: usize,
    rng: &mut R,
) -> Result<Topology> {
    if num_forks < 2 {
        return Err(invalid(format!(
            "random multigraph needs at least 2 forks, got {num_forks}"
        )));
    }
    if num_philosophers == 0 {
        return Err(invalid("random multigraph needs at least 1 philosopher"));
    }
    let mut arcs = Vec::with_capacity(num_philosophers);
    for _ in 0..num_philosophers {
        let left = rng.gen_range(0..num_forks) as u32;
        let mut right = rng.gen_range(0..num_forks) as u32;
        while right == left {
            right = rng.gen_range(0..num_forks) as u32;
        }
        arcs.push((left, right));
    }
    Topology::from_arcs(num_forks, arcs)
}

/// A random *connected* multigraph: a random spanning tree over the forks
/// (guaranteeing connectivity, `num_forks - 1` philosophers) plus
/// `extra_philosophers` additional uniformly random arcs.
///
/// # Errors
///
/// Returns an error if `num_forks < 2`.
pub fn random_connected<R: Rng + ?Sized>(
    num_forks: usize,
    extra_philosophers: usize,
    rng: &mut R,
) -> Result<Topology> {
    if num_forks < 2 {
        return Err(invalid(format!(
            "random connected multigraph needs at least 2 forks, got {num_forks}"
        )));
    }
    // Random spanning tree by random attachment order.
    let mut order: Vec<u32> = (0..num_forks as u32).collect();
    order.shuffle(rng);
    let mut arcs = Vec::with_capacity(num_forks - 1 + extra_philosophers);
    for i in 1..order.len() {
        let parent = order[rng.gen_range(0..i)];
        arcs.push((parent, order[i]));
    }
    for _ in 0..extra_philosophers {
        let left = rng.gen_range(0..num_forks) as u32;
        let mut right = rng.gen_range(0..num_forks) as u32;
        while right == left {
            right = rng.gen_range(0..num_forks) as u32;
        }
        arcs.push((left, right));
    }
    Topology::from_arcs(num_forks, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::ForkId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn classic_ring_counts() {
        for n in 2..20 {
            let t = classic_ring(n).unwrap();
            assert_eq!(t.num_philosophers(), n);
            assert_eq!(t.num_forks(), n);
            assert!(t.is_classic_ring(), "ring of size {n} must be classic");
        }
        assert!(classic_ring(0).is_err());
        assert!(classic_ring(1).is_err());
    }

    #[test]
    fn figure1_gallery_matches_paper_counts() {
        let gallery = figure1_gallery();
        let counts: Vec<(usize, usize)> = gallery
            .iter()
            .map(|(_, t)| (t.num_philosophers(), t.num_forks()))
            .collect();
        assert_eq!(counts, vec![(6, 3), (12, 6), (16, 12), (10, 9)]);
        // Every gallery system is a *generalized* instance: either n != k or
        // some fork is shared by more than two philosophers.
        for (name, t) in &gallery {
            assert!(
                t.num_philosophers() != t.num_forks() || t.max_fork_sharing() > 2,
                "{name} should not be a classic instance"
            );
            assert!(analysis::is_connected(t), "{name} should be connected");
        }
    }

    #[test]
    fn shared_ring_rejects_bad_parameters() {
        assert!(shared_ring(1, 2).is_err());
        assert!(shared_ring(3, 0).is_err());
    }

    #[test]
    fn ring_with_chord_layout() {
        let t = ring_with_chord(6, ChordTarget::ExternalFork).unwrap();
        assert_eq!(t.num_philosophers(), 7);
        assert_eq!(t.num_forks(), 7);
        // Node 0 has three incident arcs: the Theorem 1 precondition.
        assert_eq!(t.fork_degree(ForkId::new(0)), 3);

        let t = ring_with_chord(6, ChordTarget::RingNode { offset: 3 }).unwrap();
        assert_eq!(t.num_philosophers(), 7);
        assert_eq!(t.num_forks(), 6);
        assert_eq!(t.fork_degree(ForkId::new(0)), 3);
        assert_eq!(t.fork_degree(ForkId::new(3)), 3);

        assert!(ring_with_chord(2, ChordTarget::ExternalFork).is_err());
        assert!(ring_with_chord(6, ChordTarget::RingNode { offset: 1 }).is_err());
        assert!(ring_with_chord(6, ChordTarget::RingNode { offset: 5 }).is_err());
    }

    #[test]
    fn theta_graph_counts() {
        let t = theta_graph(3, 3, 2).unwrap();
        assert_eq!(t.num_philosophers(), 8);
        assert_eq!(t.num_forks(), 7);
        // The hubs have degree 3.
        assert_eq!(t.fork_degree(ForkId::new(0)), 3);
        assert_eq!(t.fork_degree(ForkId::new(1)), 3);
        // Interior forks have degree 2.
        for f in t.fork_ids().skip(2) {
            assert_eq!(t.fork_degree(f), 2);
        }
        assert!(theta_graph(0, 1, 1).is_err());
        assert!(theta_graph(1, 1, 1).is_err());
    }

    #[test]
    fn figure3_theta_is_the_8_over_7_system() {
        let t = figure3_theta();
        assert_eq!(t.num_philosophers(), 8);
        assert_eq!(t.num_forks(), 7);
    }

    #[test]
    fn star_and_path_shapes() {
        let s = star(5).unwrap();
        assert_eq!(s.num_philosophers(), 5);
        assert_eq!(s.num_forks(), 6);
        assert_eq!(s.max_fork_sharing(), 5);
        assert!(star(0).is_err());

        let p = path(4).unwrap();
        assert_eq!(p.num_philosophers(), 3);
        assert_eq!(p.num_forks(), 4);
        assert!(path(1).is_err());
    }

    #[test]
    fn complete_conflict_counts() {
        let t = complete_conflict(5).unwrap();
        assert_eq!(t.num_philosophers(), 10);
        assert_eq!(t.num_forks(), 5);
        assert_eq!(t.max_fork_sharing(), 4);
        assert!(complete_conflict(1).is_err());
    }

    #[test]
    fn random_generators_respect_counts_and_validity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let t = random_multigraph(6, 10, &mut rng).unwrap();
            assert_eq!(t.num_forks(), 6);
            assert_eq!(t.num_philosophers(), 10);
        }
        for _ in 0..50 {
            let t = random_connected(8, 5, &mut rng).unwrap();
            assert_eq!(t.num_forks(), 8);
            assert_eq!(t.num_philosophers(), 12);
            assert!(analysis::is_connected(&t));
        }
        assert!(random_multigraph(1, 3, &mut rng).is_err());
        assert!(random_multigraph(4, 0, &mut rng).is_err());
        assert!(random_connected(1, 0, &mut rng).is_err());
    }

    // Property-style sweeps over exhaustive / seeded parameter grids (the
    // offline replacement for the former proptest strategies).

    #[test]
    fn prop_classic_ring_every_fork_shared_by_two() {
        for n in 2usize..64 {
            let t = classic_ring(n).unwrap();
            assert!(t.fork_ids().all(|f| t.fork_degree(f) == 2), "ring {n}");
        }
    }

    #[test]
    fn prop_shared_ring_degree_is_twice_sharing() {
        for k in 2usize..16 {
            for s in 1usize..5 {
                let t = shared_ring(k, s).unwrap();
                assert_eq!(t.num_philosophers(), k * s);
                assert!(
                    t.fork_ids().all(|f| t.fork_degree(f) == 2 * s),
                    "shared_ring({k}, {s})"
                );
            }
        }
    }

    #[test]
    fn prop_theta_counts() {
        for a in 1usize..6 {
            for b in 2usize..6 {
                for c in 1usize..6 {
                    let t = theta_graph(a, b, c).unwrap();
                    assert_eq!(t.num_philosophers(), a + b + c);
                    assert_eq!(t.num_forks(), (a - 1) + (b - 1) + (c - 1) + 2);
                }
            }
        }
    }

    #[test]
    fn prop_random_multigraph_arcs_are_valid() {
        let mut param_rng = ChaCha8Rng::seed_from_u64(0xB111_DE25);
        for seed in 0u64..200 {
            let forks = param_rng.gen_range(2usize..12);
            let phils = param_rng.gen_range(1usize..20);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let t = random_multigraph(forks, phils, &mut rng).unwrap();
            for p in t.philosopher_ids() {
                let ends = t.forks_of(p);
                assert_ne!(ends.left, ends.right);
            }
        }
    }
}
