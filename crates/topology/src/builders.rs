//! Topology generators.
//!
//! This module contains constructors for every topology the paper discusses:
//!
//! * the **classic ring** (the original Dijkstra table), on which Lehmann &
//!   Rabin's algorithms are correct;
//! * the four example generalized systems of **Figure 1**;
//! * the **ring with a chord** family that witnesses Theorem 1 (LR1 fails);
//! * the **theta graphs** (two nodes joined by three internally disjoint
//!   paths) that witness Theorem 2 (LR2 fails);
//! * auxiliary families (star, path, complete conflict graph) used in the
//!   test-suite and benchmarks;
//! * **random multigraph** generators for the probabilistic sweeps of
//!   experiments E5/E6;
//! * the parameterized **scenario families** enumerated by `gdp-scenarios`
//!   and the `gdp sweep` command: grids, tori, barbells, generalized theta
//!   graphs and seeded random `d`-regular conflict graphs.
//!
//! All generators return [`Result<Topology>`](crate::Result) and document the
//! parameter ranges they accept.

use crate::{Result, Topology, TopologyError};
use rand::seq::SliceRandom;
use rand::Rng;

fn invalid(message: impl Into<String>) -> TopologyError {
    TopologyError::InvalidParameter {
        message: message.into(),
    }
}

/// The classic dining philosophers table: `n` forks and `n` philosophers
/// alternating around a ring.
///
/// Philosopher `i` is adjacent to forks `i` (its left) and `(i + 1) % n`
/// (its right).
///
/// # Errors
///
/// Returns an error if `n < 2`: with fewer than two philosophers there is no
/// ring (and fewer than two forks violates Definition 1).
///
/// ```
/// use gdp_topology::builders::classic_ring;
/// let t = classic_ring(7)?;
/// assert!(t.is_classic_ring());
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
pub fn classic_ring(n: usize) -> Result<Topology> {
    if n < 2 {
        return Err(invalid(format!(
            "classic ring needs at least 2 philosophers, got {n}"
        )));
    }
    let arcs = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32));
    Topology::from_arcs(n, arcs)
}

/// A ring of `k` forks in which every pair of adjacent forks is contended by
/// `sharing` parallel philosophers.
///
/// With `sharing == 1` this is the classic ring; with `sharing == 2` and
/// `k == 3` it is the leftmost system of Figure 1 (6 philosophers, 3 forks),
/// and with `sharing == 2`, `k == 6` the second system (12 philosophers,
/// 6 forks).
///
/// # Errors
///
/// Returns an error if `k < 2` or `sharing == 0`.
pub fn shared_ring(k: usize, sharing: usize) -> Result<Topology> {
    if k < 2 {
        return Err(invalid(format!(
            "shared ring needs at least 2 forks, got {k}"
        )));
    }
    if sharing == 0 {
        return Err(invalid("sharing factor must be at least 1"));
    }
    let mut arcs = Vec::with_capacity(k * sharing);
    for i in 0..k {
        let left = i as u32;
        let right = ((i + 1) % k) as u32;
        for copy in 0..sharing {
            // Alternate the orientation of parallel philosophers so that the
            // topology stays symmetric but the left/right labels differ,
            // mirroring how the paper draws the Figure 1 systems.
            if copy % 2 == 0 {
                arcs.push((left, right));
            } else {
                arcs.push((right, left));
            }
        }
    }
    Topology::from_arcs(k, arcs)
}

/// Figure 1, leftmost system: **6 philosophers, 3 forks** — a triangle of
/// forks with every edge doubled.
///
/// This is the topology on which Section 3 of the paper constructs the
/// adversary defeating LR1.
pub fn figure1_triangle() -> Topology {
    shared_ring(3, 2).expect("triangle-6 parameters are valid")
}

/// Figure 1, second system: **12 philosophers, 6 forks** — a hexagon of forks
/// with every edge doubled.
pub fn figure1_hexagon() -> Topology {
    shared_ring(6, 2).expect("hexagon-12 parameters are valid")
}

/// Figure 1, third system: **16 philosophers, 12 forks**.
///
/// The figure shows a ring of twelve forks in which the twelve ring
/// philosophers are augmented by four additional philosophers bridging
/// opposite-quadrant forks.  We reproduce it as a 12-ring plus four chords
/// `{0-6, 3-9, 1-7, 4-10}`, which matches the stated counts and keeps the
/// system vertex- and arc-transitive enough for the experiments that use it
/// (the *exact* drawing is not load-bearing for any claim in the paper; any
/// 16-arc/12-fork system with shared forks exhibits the same phenomena).
pub fn figure1_ring12_chords() -> Topology {
    let mut arcs: Vec<(u32, u32)> = (0..12).map(|i| (i as u32, ((i + 1) % 12) as u32)).collect();
    arcs.extend_from_slice(&[(0, 6), (3, 9), (1, 7), (4, 10)]);
    Topology::from_arcs(12, arcs).expect("ring-12 with 4 chords is valid")
}

/// Figure 1, rightmost system: **10 philosophers, 9 forks**.
///
/// We reproduce it as a ring of nine forks (nine philosophers) plus one
/// additional philosopher bridging forks 0 and 3, giving one fork of degree 3
/// — the smallest asymmetric-sharing example of the figure.  As with
/// [`figure1_ring12_chords`], the precise drawing is not load-bearing; the
/// counts and the presence of a fork shared by three philosophers are.
pub fn figure1_ring9_chord() -> Topology {
    let mut arcs: Vec<(u32, u32)> = (0..9).map(|i| (i as u32, ((i + 1) % 9) as u32)).collect();
    arcs.push((0, 3));
    Topology::from_arcs(9, arcs).expect("ring-9 with 1 chord is valid")
}

/// The full Figure 1 gallery in left-to-right order, with the paper's
/// philosopher/fork counts.
///
/// ```
/// let gallery = gdp_topology::builders::figure1_gallery();
/// let counts: Vec<(usize, usize)> = gallery
///     .iter()
///     .map(|(_, t)| (t.num_philosophers(), t.num_forks()))
///     .collect();
/// assert_eq!(counts, vec![(6, 3), (12, 6), (16, 12), (10, 9)]);
/// ```
pub fn figure1_gallery() -> Vec<(&'static str, Topology)> {
    vec![
        ("triangle-6/3", figure1_triangle()),
        ("hexagon-12/6", figure1_hexagon()),
        ("ring12+4chords-16/12", figure1_ring12_chords()),
        ("ring9+chord-10/9", figure1_ring9_chord()),
    ]
}

/// Where the extra philosopher of [`ring_with_chord`] attaches its far end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChordTarget {
    /// The far end is another node of the ring, `offset` steps around from
    /// node 0 (so `offset` must be in `2..ring_size - 1` to avoid creating a
    /// parallel arc with a ring philosopher — parallel arcs are legal but a
    /// different shape than Figure 2 draws).
    RingNode {
        /// Distance around the ring from node 0 to the far endpoint.
        offset: usize,
    },
    /// The far end is a brand-new fork outside the ring, exactly as drawn in
    /// Figure 2 (node `g` need not belong to `H`).
    ExternalFork,
}

/// The Theorem 1 witness family: a ring `H` of `ring_size` forks (and
/// `ring_size` philosophers) plus one extra philosopher `P` incident on ring
/// node 0, so that node 0 has three incident arcs.
///
/// Figure 2 of the paper draws `ring_size == 6` and an external far endpoint
/// `g`; [`ChordTarget::ExternalFork`] reproduces that exactly.  The returned
/// topology places the extra philosopher **last** (identifier
/// `ring_size`), and its shared fork is node `0`; the Theorem 1 adversary in
/// `gdp-adversary` relies on this layout.
///
/// # Errors
///
/// Returns an error if `ring_size < 3`, or if a `RingNode` offset is not in
/// `2..ring_size - 1`.
pub fn ring_with_chord(ring_size: usize, target: ChordTarget) -> Result<Topology> {
    if ring_size < 3 {
        return Err(invalid(format!(
            "ring with chord needs a ring of at least 3 forks, got {ring_size}"
        )));
    }
    let mut arcs: Vec<(u32, u32)> = (0..ring_size)
        .map(|i| (i as u32, ((i + 1) % ring_size) as u32))
        .collect();
    let num_forks = match target {
        ChordTarget::RingNode { offset } => {
            if offset < 2 || offset >= ring_size - 1 {
                return Err(invalid(format!(
                    "chord offset must be in 2..{} to avoid duplicating a ring arc, got {offset}",
                    ring_size - 1
                )));
            }
            arcs.push((0, offset as u32));
            ring_size
        }
        ChordTarget::ExternalFork => {
            arcs.push((0, ring_size as u32));
            ring_size + 1
        }
    };
    Topology::from_arcs(num_forks, arcs)
}

/// The exact system drawn in Figure 2: a hexagonal ring plus one philosopher
/// from ring node 0 to an external fork `g`.
pub fn figure2_hexagon_with_pendant() -> Topology {
    ring_with_chord(6, ChordTarget::ExternalFork).expect("figure 2 parameters are valid")
}

/// The Theorem 2 witness family: a **theta graph**.  Two hub forks are joined
/// by three internally disjoint paths with `len_a`, `len_b` and `len_c`
/// philosophers respectively.
///
/// Any two of the paths form a ring `H`, and the third is the extra path `P`
/// required by Theorem 2.  Fork 0 and fork 1 are the hubs; the interior forks
/// of the paths are numbered consecutively path by path, and the philosophers
/// are numbered along path A, then path B, then path C.
///
/// # Errors
///
/// Returns an error if any path length is zero or if all three lengths are 1
/// (three parallel arcs form a legal multigraph but not the theta graph of
/// Figure 3; use [`Topology::from_arcs`] directly for that shape).
pub fn theta_graph(len_a: usize, len_b: usize, len_c: usize) -> Result<Topology> {
    generalized_theta(&[len_a, len_b, len_c])
}

/// The **generalized theta graph** Θ(l₁, …, lₘ): two hub forks joined by
/// `paths.len()` internally disjoint paths with the given philosopher counts.
///
/// With three paths this is the classic [`theta_graph`] of Theorem 2; with
/// more it is the natural "multi-path" witness family the scenario sweeps
/// enumerate (every pair of paths forms a ring, so the Theorem 2 obstruction
/// appears `m·(m−1)/2` times over).
///
/// Fork 0 and fork 1 are the hubs; interior forks are numbered consecutively
/// path by path, and the philosophers are numbered along each path in order.
///
/// ```
/// use gdp_topology::builders::generalized_theta;
/// // Four paths of 2 philosophers each: 8 philosophers, 2 + 4 forks.
/// let t = generalized_theta(&[2, 2, 2, 2])?;
/// assert_eq!(t.num_philosophers(), 8);
/// assert_eq!(t.num_forks(), 6);
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
///
/// # Errors
///
/// Returns an error if fewer than two paths are given, if any path is empty,
/// or if every path has length 1 (that shape is a bundle of parallel arcs,
/// legal as a multigraph but not a theta graph; build it with
/// [`Topology::from_arcs`] directly).
pub fn generalized_theta(paths: &[usize]) -> Result<Topology> {
    if paths.len() < 2 {
        return Err(invalid(format!(
            "a generalized theta graph needs at least 2 paths, got {}",
            paths.len()
        )));
    }
    if paths.contains(&0) {
        return Err(invalid(
            "theta graph paths must each contain at least one philosopher",
        ));
    }
    if paths.iter().all(|&len| len == 1) {
        return Err(invalid(
            "a theta graph needs at least one path of length >= 2; parallel arcs requested",
        ));
    }
    let hub_a = 0u32;
    let hub_b = 1u32;
    let mut next_fork = 2u32;
    let mut arcs = Vec::new();
    for &len in paths {
        let mut prev = hub_a;
        for step in 0..len {
            let next = if step + 1 == len {
                hub_b
            } else {
                let f = next_fork;
                next_fork += 1;
                f
            };
            arcs.push((prev, next));
            prev = next;
        }
    }
    Topology::from_arcs(next_fork as usize, arcs)
}

/// The system drawn in Figure 3: a hexagonal ring two of whose opposite nodes
/// are additionally joined by a two-philosopher path (a theta graph with path
/// lengths 3, 3 and 2: 8 philosophers, 7 forks).
pub fn figure3_theta() -> Topology {
    theta_graph(3, 3, 2).expect("figure 3 parameters are valid")
}

/// A star: one hub fork shared by `spokes` philosophers, each of which also
/// has a private outer fork.
///
/// Stars are acyclic, so both Lehmann–Rabin algorithms *do* work on them; the
/// test-suite uses them as a contrast class for the Theorem 1/2 preconditions.
///
/// # Errors
///
/// Returns an error if `spokes == 0`.
pub fn star(spokes: usize) -> Result<Topology> {
    if spokes == 0 {
        return Err(invalid("a star needs at least one spoke"));
    }
    let arcs = (0..spokes).map(|i| (0u32, (i + 1) as u32));
    Topology::from_arcs(spokes + 1, arcs)
}

/// A path (open chain) of `k` forks with `k - 1` philosophers.
///
/// # Errors
///
/// Returns an error if `k < 2`.
pub fn path(k: usize) -> Result<Topology> {
    if k < 2 {
        return Err(invalid(format!("a path needs at least 2 forks, got {k}")));
    }
    let arcs = (0..k - 1).map(|i| (i as u32, (i + 1) as u32));
    Topology::from_arcs(k, arcs)
}

/// The complete conflict graph on `k` forks: one philosopher for every
/// unordered pair of forks (`k * (k - 1) / 2` philosophers).
///
/// This is the densest simple topology and the worst case for the
/// symmetry-breaking argument in the proof of Theorem 3 (the probability
/// bound `m!/(mᵏ (m−k)!)` is stated for a complete graph of forks).
///
/// # Errors
///
/// Returns an error if `k < 2`.
pub fn complete_conflict(k: usize) -> Result<Topology> {
    if k < 2 {
        return Err(invalid(format!(
            "a complete conflict graph needs at least 2 forks, got {k}"
        )));
    }
    let mut arcs = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            arcs.push((i as u32, j as u32));
        }
    }
    Topology::from_arcs(k, arcs)
}

/// An open `rows × cols` **grid**: forks at the lattice points, one
/// philosopher per lattice edge.
///
/// Fork `(r, c)` has identifier `r * cols + c`; the horizontal philosophers
/// come first (row by row), then the vertical ones.  A `1 × k` grid is the
/// open [`path`] of `k` forks.
///
/// ```
/// use gdp_topology::builders::grid;
/// let t = grid(3, 4)?;
/// assert_eq!(t.num_forks(), 12);
/// assert_eq!(t.num_philosophers(), 3 * 3 + 2 * 4); // 17 lattice edges
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
///
/// # Errors
///
/// Returns an error if either dimension is zero or the grid has fewer than
/// two forks.
pub fn grid(rows: usize, cols: usize) -> Result<Topology> {
    if rows == 0 || cols == 0 || rows * cols < 2 {
        return Err(invalid(format!(
            "a grid needs at least 1x2 lattice points, got {rows}x{cols}"
        )));
    }
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut arcs = Vec::with_capacity(rows * (cols - 1) + (rows - 1) * cols);
    for r in 0..rows {
        for c in 0..cols.saturating_sub(1) {
            arcs.push((at(r, c), at(r, c + 1)));
        }
    }
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols {
            arcs.push((at(r, c), at(r + 1, c)));
        }
    }
    Topology::from_arcs(rows * cols, arcs)
}

/// A `rows × cols` **torus** (grid with wraparound): every fork is shared by
/// exactly four philosophers.
///
/// The torus is the canonical vertex-transitive non-ring family: it is
/// 4-regular and loaded with cycles, so it sits squarely outside the classic
/// ring on which LR1/LR2 are correct, while staying perfectly symmetric —
/// exactly the contrast class the scenario sweeps need.
///
/// Fork layout matches [`grid`]; each row and each column closes into a ring.
///
/// ```
/// use gdp_topology::builders::torus;
/// let t = torus(3, 3)?;
/// assert_eq!(t.num_forks(), 9);
/// assert_eq!(t.num_philosophers(), 18);
/// assert!(t.fork_ids().all(|f| t.fork_degree(f) == 4));
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
///
/// # Errors
///
/// Returns an error if either dimension is below 3 (a 2-long dimension would
/// duplicate its wrap arc into a parallel pair, a different family).
pub fn torus(rows: usize, cols: usize) -> Result<Topology> {
    if rows < 3 || cols < 3 {
        return Err(invalid(format!(
            "a torus needs both dimensions >= 3, got {rows}x{cols}"
        )));
    }
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut arcs = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            arcs.push((at(r, c), at(r, (c + 1) % cols)));
            arcs.push((at(r, c), at((r + 1) % rows, c)));
        }
    }
    Topology::from_arcs(rows * cols, arcs)
}

/// A **barbell**: two complete conflict graphs `K_clique` whose first nodes
/// are joined by a path of `bridge` philosophers.
///
/// Barbells combine the densest local contention (the cliques) with the
/// sparsest possible coupling (the bridge), which makes them a useful stress
/// shape for fairness across "communities" of philosophers.
///
/// Forks `0..clique` form the left clique, forks `clique..2*clique` the
/// right one; the bridge runs from fork 0 to fork `clique` through
/// `bridge - 1` fresh interior forks numbered from `2 * clique`.
///
/// ```
/// use gdp_topology::builders::barbell;
/// let t = barbell(4, 2)?;
/// assert_eq!(t.num_forks(), 2 * 4 + 1);        // one interior bridge fork
/// assert_eq!(t.num_philosophers(), 2 * 6 + 2); // two K4s + the bridge
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
///
/// # Errors
///
/// Returns an error if `clique < 3` (smaller cliques are paths or rings, not
/// barbells) or `bridge == 0` (the cliques must be coupled).
pub fn barbell(clique: usize, bridge: usize) -> Result<Topology> {
    if clique < 3 {
        return Err(invalid(format!(
            "a barbell needs cliques of at least 3 forks, got {clique}"
        )));
    }
    if bridge == 0 {
        return Err(invalid(
            "a barbell needs a bridge of at least 1 philosopher",
        ));
    }
    let mut arcs = Vec::with_capacity(clique * (clique - 1) + bridge);
    for offset in [0, clique] {
        for i in 0..clique {
            for j in (i + 1)..clique {
                arcs.push(((offset + i) as u32, (offset + j) as u32));
            }
        }
    }
    let mut next_fork = 2 * clique as u32;
    let mut prev = 0u32;
    for step in 0..bridge {
        let next = if step + 1 == bridge {
            clique as u32
        } else {
            let f = next_fork;
            next_fork += 1;
            f
        };
        arcs.push((prev, next));
        prev = next;
    }
    Topology::from_arcs(next_fork as usize, arcs)
}

/// A seeded random **`degree`-regular conflict graph** on `num_forks` forks:
/// every fork is shared by exactly `degree` philosophers
/// (`num_forks * degree / 2` philosophers in total).
///
/// Uses the configuration (stub-pairing) model: each fork contributes
/// `degree` stubs, the stubs are shuffled and paired.  Pairings with
/// self-loops are rejected and redrawn (bounded retries, then a deterministic
/// stub swap), so the result is always a valid multigraph — parallel arcs may
/// occur, exactly as Definition 1 of the paper permits.  The construction is
/// fully determined by `rng`, so seeded sweeps are reproducible.
///
/// ```
/// use gdp_topology::builders::random_regular;
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
/// let t = random_regular(8, 3, &mut rng)?;
/// assert_eq!(t.num_philosophers(), 12);
/// assert!(t.fork_ids().all(|f| t.fork_degree(f) == 3));
/// # Ok::<(), gdp_topology::TopologyError>(())
/// ```
///
/// # Errors
///
/// Returns an error if `num_forks < 2`, `degree == 0`, `degree >= num_forks`,
/// or `num_forks * degree` is odd (no such graph exists).
pub fn random_regular<R: Rng + ?Sized>(
    num_forks: usize,
    degree: usize,
    rng: &mut R,
) -> Result<Topology> {
    if num_forks < 2 {
        return Err(invalid(format!(
            "a random regular graph needs at least 2 forks, got {num_forks}"
        )));
    }
    if degree == 0 {
        return Err(invalid("fork degree must be at least 1"));
    }
    if degree >= num_forks {
        return Err(invalid(format!(
            "fork degree {degree} needs more than {num_forks} forks to avoid forced self-loops"
        )));
    }
    if !(num_forks * degree).is_multiple_of(2) {
        return Err(invalid(format!(
            "no {degree}-regular graph on {num_forks} forks exists (odd stub count)"
        )));
    }
    let mut stubs: Vec<u32> = (0..num_forks as u32)
        .flat_map(|f| std::iter::repeat_n(f, degree))
        .collect();
    // Reject-and-redraw until the pairing has no self-loop; the acceptance
    // probability is bounded away from zero, so a handful of attempts almost
    // always suffices.  Parallel arcs are fine (Definition 1 multigraphs).
    const ATTEMPTS: usize = 64;
    for _ in 0..ATTEMPTS {
        stubs.shuffle(rng);
        if stubs.chunks_exact(2).all(|pair| pair[0] != pair[1]) {
            break;
        }
    }
    // Deterministic repair for the (vanishingly unlikely) case that every
    // attempt kept a self-loop: cross-swap the offending pair with any pair
    // avoiding its fork.  Such a pair exists because degree < num_forks.
    for i in (0..stubs.len()).step_by(2) {
        if stubs[i] != stubs[i + 1] {
            continue;
        }
        let loop_fork = stubs[i];
        let partner = (0..stubs.len())
            .step_by(2)
            .find(|&j| stubs[j] != loop_fork && stubs[j + 1] != loop_fork)
            .expect("degree < num_forks guarantees a loop-free partner pair");
        stubs.swap(i + 1, partner + 1);
    }
    let arcs = stubs.chunks_exact(2).map(|pair| (pair[0], pair[1]));
    Topology::from_arcs(num_forks, arcs)
}

/// A uniformly random multigraph with `num_forks` forks and
/// `num_philosophers` philosophers; each philosopher independently picks an
/// ordered pair of distinct forks uniformly at random.
///
/// The result may be disconnected; use [`random_connected`] when a connected
/// conflict graph is required.
///
/// # Errors
///
/// Returns an error if `num_forks < 2` or `num_philosophers == 0`.
pub fn random_multigraph<R: Rng + ?Sized>(
    num_forks: usize,
    num_philosophers: usize,
    rng: &mut R,
) -> Result<Topology> {
    if num_forks < 2 {
        return Err(invalid(format!(
            "random multigraph needs at least 2 forks, got {num_forks}"
        )));
    }
    if num_philosophers == 0 {
        return Err(invalid("random multigraph needs at least 1 philosopher"));
    }
    let mut arcs = Vec::with_capacity(num_philosophers);
    for _ in 0..num_philosophers {
        let left = rng.gen_range(0..num_forks) as u32;
        let mut right = rng.gen_range(0..num_forks) as u32;
        while right == left {
            right = rng.gen_range(0..num_forks) as u32;
        }
        arcs.push((left, right));
    }
    Topology::from_arcs(num_forks, arcs)
}

/// A random *connected* multigraph: a random spanning tree over the forks
/// (guaranteeing connectivity, `num_forks - 1` philosophers) plus
/// `extra_philosophers` additional uniformly random arcs.
///
/// # Errors
///
/// Returns an error if `num_forks < 2`.
pub fn random_connected<R: Rng + ?Sized>(
    num_forks: usize,
    extra_philosophers: usize,
    rng: &mut R,
) -> Result<Topology> {
    if num_forks < 2 {
        return Err(invalid(format!(
            "random connected multigraph needs at least 2 forks, got {num_forks}"
        )));
    }
    // Random spanning tree by random attachment order.
    let mut order: Vec<u32> = (0..num_forks as u32).collect();
    order.shuffle(rng);
    let mut arcs = Vec::with_capacity(num_forks - 1 + extra_philosophers);
    for i in 1..order.len() {
        let parent = order[rng.gen_range(0..i)];
        arcs.push((parent, order[i]));
    }
    for _ in 0..extra_philosophers {
        let left = rng.gen_range(0..num_forks) as u32;
        let mut right = rng.gen_range(0..num_forks) as u32;
        while right == left {
            right = rng.gen_range(0..num_forks) as u32;
        }
        arcs.push((left, right));
    }
    Topology::from_arcs(num_forks, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::ForkId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn classic_ring_counts() {
        for n in 2..20 {
            let t = classic_ring(n).unwrap();
            assert_eq!(t.num_philosophers(), n);
            assert_eq!(t.num_forks(), n);
            assert!(t.is_classic_ring(), "ring of size {n} must be classic");
        }
        assert!(classic_ring(0).is_err());
        assert!(classic_ring(1).is_err());
    }

    #[test]
    fn figure1_gallery_matches_paper_counts() {
        let gallery = figure1_gallery();
        let counts: Vec<(usize, usize)> = gallery
            .iter()
            .map(|(_, t)| (t.num_philosophers(), t.num_forks()))
            .collect();
        assert_eq!(counts, vec![(6, 3), (12, 6), (16, 12), (10, 9)]);
        // Every gallery system is a *generalized* instance: either n != k or
        // some fork is shared by more than two philosophers.
        for (name, t) in &gallery {
            assert!(
                t.num_philosophers() != t.num_forks() || t.max_fork_sharing() > 2,
                "{name} should not be a classic instance"
            );
            assert!(analysis::is_connected(t), "{name} should be connected");
        }
    }

    #[test]
    fn shared_ring_rejects_bad_parameters() {
        assert!(shared_ring(1, 2).is_err());
        assert!(shared_ring(3, 0).is_err());
    }

    #[test]
    fn ring_with_chord_layout() {
        let t = ring_with_chord(6, ChordTarget::ExternalFork).unwrap();
        assert_eq!(t.num_philosophers(), 7);
        assert_eq!(t.num_forks(), 7);
        // Node 0 has three incident arcs: the Theorem 1 precondition.
        assert_eq!(t.fork_degree(ForkId::new(0)), 3);

        let t = ring_with_chord(6, ChordTarget::RingNode { offset: 3 }).unwrap();
        assert_eq!(t.num_philosophers(), 7);
        assert_eq!(t.num_forks(), 6);
        assert_eq!(t.fork_degree(ForkId::new(0)), 3);
        assert_eq!(t.fork_degree(ForkId::new(3)), 3);

        assert!(ring_with_chord(2, ChordTarget::ExternalFork).is_err());
        assert!(ring_with_chord(6, ChordTarget::RingNode { offset: 1 }).is_err());
        assert!(ring_with_chord(6, ChordTarget::RingNode { offset: 5 }).is_err());
    }

    #[test]
    fn theta_graph_counts() {
        let t = theta_graph(3, 3, 2).unwrap();
        assert_eq!(t.num_philosophers(), 8);
        assert_eq!(t.num_forks(), 7);
        // The hubs have degree 3.
        assert_eq!(t.fork_degree(ForkId::new(0)), 3);
        assert_eq!(t.fork_degree(ForkId::new(1)), 3);
        // Interior forks have degree 2.
        for f in t.fork_ids().skip(2) {
            assert_eq!(t.fork_degree(f), 2);
        }
        assert!(theta_graph(0, 1, 1).is_err());
        assert!(theta_graph(1, 1, 1).is_err());
    }

    #[test]
    fn figure3_theta_is_the_8_over_7_system() {
        let t = figure3_theta();
        assert_eq!(t.num_philosophers(), 8);
        assert_eq!(t.num_forks(), 7);
    }

    #[test]
    fn star_and_path_shapes() {
        let s = star(5).unwrap();
        assert_eq!(s.num_philosophers(), 5);
        assert_eq!(s.num_forks(), 6);
        assert_eq!(s.max_fork_sharing(), 5);
        assert!(star(0).is_err());

        let p = path(4).unwrap();
        assert_eq!(p.num_philosophers(), 3);
        assert_eq!(p.num_forks(), 4);
        assert!(path(1).is_err());
    }

    #[test]
    fn complete_conflict_counts() {
        let t = complete_conflict(5).unwrap();
        assert_eq!(t.num_philosophers(), 10);
        assert_eq!(t.num_forks(), 5);
        assert_eq!(t.max_fork_sharing(), 4);
        assert!(complete_conflict(1).is_err());
    }

    #[test]
    fn generalized_theta_matches_classic_theta_and_extends_it() {
        // Three paths: identical layout to the Theorem 2 builder.
        let classic = theta_graph(3, 3, 2).unwrap();
        let general = generalized_theta(&[3, 3, 2]).unwrap();
        assert_eq!(classic.arcs(), general.arcs());

        // Five paths: hubs have degree 5, everything else degree 2.
        let t = generalized_theta(&[2, 2, 3, 1, 4]).unwrap();
        assert_eq!(t.num_philosophers(), 12);
        assert_eq!(t.fork_degree(ForkId::new(0)), 5);
        assert_eq!(t.fork_degree(ForkId::new(1)), 5);
        for f in t.fork_ids().skip(2) {
            assert_eq!(t.fork_degree(f), 2);
        }
        assert!(analysis::is_connected(&t));

        assert!(generalized_theta(&[3]).is_err());
        assert!(generalized_theta(&[2, 0]).is_err());
        assert!(generalized_theta(&[1, 1, 1, 1]).is_err());
    }

    #[test]
    fn grid_counts_and_degrees() {
        let t = grid(3, 4).unwrap();
        assert_eq!(t.num_forks(), 12);
        assert_eq!(t.num_philosophers(), 17);
        assert!(analysis::is_connected(&t));
        // Corner forks have degree 2, edge forks 3, interior forks 4.
        assert_eq!(t.fork_degree(ForkId::new(0)), 2);
        assert_eq!(t.fork_degree(ForkId::new(1)), 3);
        assert_eq!(t.fork_degree(ForkId::new(5)), 4);
        // A 1 x k grid is the open path.
        let line = grid(1, 5).unwrap();
        assert_eq!(line.arcs(), path(5).unwrap().arcs());
        assert!(grid(0, 4).is_err());
        assert!(grid(1, 1).is_err());
    }

    #[test]
    fn torus_is_four_regular_and_connected() {
        for (rows, cols) in [(3, 3), (3, 5), (4, 4)] {
            let t = torus(rows, cols).unwrap();
            assert_eq!(t.num_forks(), rows * cols);
            assert_eq!(t.num_philosophers(), 2 * rows * cols);
            assert!(t.fork_ids().all(|f| t.fork_degree(f) == 4));
            assert!(analysis::is_connected(&t), "torus {rows}x{cols}");
            // Tori are cyclic but never classic rings: the LR algorithms'
            // safe zone excludes them.
            assert!(analysis::has_cycle(&t));
            assert!(!t.is_classic_ring());
        }
        assert!(torus(2, 5).is_err());
        assert!(torus(3, 2).is_err());
    }

    #[test]
    fn barbell_counts_and_structure() {
        let t = barbell(4, 2).unwrap();
        assert_eq!(t.num_forks(), 9);
        assert_eq!(t.num_philosophers(), 14);
        assert!(analysis::is_connected(&t));
        // The clique entry forks carry the clique arcs plus the bridge.
        assert_eq!(t.fork_degree(ForkId::new(0)), 4);
        assert_eq!(t.fork_degree(ForkId::new(4)), 4);
        // A length-1 bridge adds no interior fork.
        let tight = barbell(3, 1).unwrap();
        assert_eq!(tight.num_forks(), 6);
        assert_eq!(tight.num_philosophers(), 7);
        assert!(barbell(2, 1).is_err());
        assert!(barbell(3, 0).is_err());
    }

    #[test]
    fn random_regular_is_exactly_regular_and_seeded() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for (forks, degree) in [(6, 2), (8, 3), (9, 4), (20, 3)] {
            let t = random_regular(forks, degree, &mut rng).unwrap();
            assert_eq!(t.num_forks(), forks);
            assert_eq!(t.num_philosophers(), forks * degree / 2);
            assert!(
                t.fork_ids().all(|f| t.fork_degree(f) == degree),
                "{degree}-regular on {forks} forks"
            );
            // No self-loops: every philosopher joins two distinct forks
            // (Topology::from_arcs would have rejected them anyway).
            for p in t.philosopher_ids() {
                let ends = t.forks_of(p);
                assert_ne!(ends.left, ends.right);
            }
        }
        // Identical seeds give identical graphs; different seeds differ.
        let a = random_regular(10, 3, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b = random_regular(10, 3, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let c = random_regular(10, 3, &mut ChaCha8Rng::seed_from_u64(6)).unwrap();
        assert_eq!(a.arcs(), b.arcs());
        assert_ne!(a.arcs(), c.arcs());

        assert!(random_regular(1, 1, &mut rng).is_err());
        assert!(random_regular(6, 0, &mut rng).is_err());
        assert!(random_regular(4, 4, &mut rng).is_err());
        assert!(random_regular(5, 3, &mut rng).is_err());
    }

    #[test]
    fn random_generators_respect_counts_and_validity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let t = random_multigraph(6, 10, &mut rng).unwrap();
            assert_eq!(t.num_forks(), 6);
            assert_eq!(t.num_philosophers(), 10);
        }
        for _ in 0..50 {
            let t = random_connected(8, 5, &mut rng).unwrap();
            assert_eq!(t.num_forks(), 8);
            assert_eq!(t.num_philosophers(), 12);
            assert!(analysis::is_connected(&t));
        }
        assert!(random_multigraph(1, 3, &mut rng).is_err());
        assert!(random_multigraph(4, 0, &mut rng).is_err());
        assert!(random_connected(1, 0, &mut rng).is_err());
    }

    // Property-style sweeps over exhaustive / seeded parameter grids (the
    // offline replacement for the former proptest strategies).

    #[test]
    fn prop_classic_ring_every_fork_shared_by_two() {
        for n in 2usize..64 {
            let t = classic_ring(n).unwrap();
            assert!(t.fork_ids().all(|f| t.fork_degree(f) == 2), "ring {n}");
        }
    }

    #[test]
    fn prop_shared_ring_degree_is_twice_sharing() {
        for k in 2usize..16 {
            for s in 1usize..5 {
                let t = shared_ring(k, s).unwrap();
                assert_eq!(t.num_philosophers(), k * s);
                assert!(
                    t.fork_ids().all(|f| t.fork_degree(f) == 2 * s),
                    "shared_ring({k}, {s})"
                );
            }
        }
    }

    #[test]
    fn prop_theta_counts() {
        for a in 1usize..6 {
            for b in 2usize..6 {
                for c in 1usize..6 {
                    let t = theta_graph(a, b, c).unwrap();
                    assert_eq!(t.num_philosophers(), a + b + c);
                    assert_eq!(t.num_forks(), (a - 1) + (b - 1) + (c - 1) + 2);
                }
            }
        }
    }

    #[test]
    fn prop_random_multigraph_arcs_are_valid() {
        let mut param_rng = ChaCha8Rng::seed_from_u64(0xB111_DE25);
        for seed in 0u64..200 {
            let forks = param_rng.gen_range(2usize..12);
            let phils = param_rng.gen_range(1usize..20);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let t = random_multigraph(forks, phils, &mut rng).unwrap();
            for p in t.philosopher_ids() {
                let ends = t.forks_of(p);
                assert_ne!(ends.left, ends.right);
            }
        }
    }
}
