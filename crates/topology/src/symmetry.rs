//! Orientation-preserving topology automorphisms.
//!
//! A generalized dining philosophers system is symmetric by construction:
//! every philosopher runs the same program and every fork starts in the same
//! state.  The only thing that distinguishes two executions related by a
//! relabelling of the multigraph is the labels themselves — so states that
//! differ by an automorphism of the topology are bisimilar, and an exact
//! model checker may identify them (the *symmetry quotient* of
//! `gdp-mcheck`).  On the classic `n`-ring the `n` rotations alone shrink
//! the reachable state space by a factor of about `n`.
//!
//! Soundness requires one care: the paper's programs are written in terms of
//! each philosopher's private *left*/*right* orientation
//! ([`Side`](crate::Side)).  An
//! automorphism may therefore only map a philosopher onto one whose left
//! fork is the image of its left fork and likewise for the right — an
//! **orientation-preserving** automorphism.  (A reflection of the classic
//! ring swaps every philosopher's sides, so it is *not* returned here, and
//! indeed identifying states across it would be unsound for a left-biased
//! coin.)
//!
//! [`automorphisms`] enumerates these symmetries by backtracking over fork
//! relabellings, matching parallel philosophers (arcs with identical
//! oriented endpoints) in increasing-identifier order.  The result always
//! contains the identity; it is a set of genuine automorphisms even when
//! truncated by the search budget, which is all fingerprint-minimisation
//! needs to stay sound.

use crate::{ForkId, PhilosopherId, Topology};
use std::collections::HashMap;

/// One orientation-preserving automorphism: a fork relabelling together
/// with the philosopher relabelling it induces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Automorphism {
    /// `fork_map[f]` is the image of fork `f`.
    pub fork_map: Vec<ForkId>,
    /// `phil_map[p]` is the image of philosopher `p`.
    pub phil_map: Vec<PhilosopherId>,
}

impl Automorphism {
    /// The identity automorphism for a system with `num_forks` forks and
    /// `num_philosophers` philosophers.
    #[must_use]
    pub fn identity(num_forks: usize, num_philosophers: usize) -> Self {
        Automorphism {
            fork_map: (0..num_forks as u32).map(ForkId::new).collect(),
            phil_map: (0..num_philosophers as u32)
                .map(PhilosopherId::new)
                .collect(),
        }
    }

    /// Returns `true` if this is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.fork_map
            .iter()
            .enumerate()
            .all(|(i, f)| f.index() == i)
            && self
                .phil_map
                .iter()
                .enumerate()
                .all(|(i, p)| p.index() == i)
    }
}

/// Hard cap on the backtracking search, measured in explored assignments.
/// Large enough for every witness topology in this workspace, small enough
/// that a pathological multigraph cannot stall a checker run.
const SEARCH_BUDGET: usize = 200_000;

/// Enumerates orientation-preserving automorphisms of `topology`, up to
/// `limit` of them (the identity is always first).
///
/// Parallel philosophers — arcs with identical oriented fork pairs — are
/// matched in increasing-identifier order, so each fork relabelling induces
/// exactly one philosopher relabelling.  The search backtracks over fork
/// images with degree and incidence pruning and gives up (returning what it
/// has found so far, always at least the identity) once an internal budget
/// is exhausted; any subset found this way is sound for symmetry reduction.
///
/// ```
/// use gdp_topology::builders::classic_ring;
/// use gdp_topology::symmetry::automorphisms;
///
/// // The classic n-ring has exactly its n rotations (reflections reverse
/// // every philosopher's left/right orientation and are excluded).
/// let ring = classic_ring(6).unwrap();
/// assert_eq!(automorphisms(&ring, 64).len(), 6);
/// ```
#[must_use]
pub fn automorphisms(topology: &Topology, limit: usize) -> Vec<Automorphism> {
    let k = topology.num_forks();
    let n = topology.num_philosophers();
    let limit = limit.max(1);

    // Bundle the arcs by oriented endpoint pair: philosophers in a bundle
    // are interchangeable up to their identifiers.
    let mut bundles: HashMap<(u32, u32), Vec<PhilosopherId>> = HashMap::new();
    for p in topology.philosopher_ids() {
        let ends = topology.forks_of(p);
        bundles
            .entry((ends.left.raw(), ends.right.raw()))
            .or_default()
            .push(p);
    }
    // (Incidence lists are in increasing id order already, but make the
    // canonical bundle order explicit.)
    for bundle in bundles.values_mut() {
        bundle.sort_unstable();
    }

    let mut search = Search {
        topology,
        bundles: &bundles,
        fork_image: vec![u32::MAX; k],
        image_used: vec![false; k],
        found: Vec::with_capacity(limit.min(16)),
        limit,
        budget: SEARCH_BUDGET,
        num_philosophers: n,
    };
    search.assign(0);
    debug_assert!(search.found.iter().any(Automorphism::is_identity));
    // Identity first, then by fork image — a stable, deterministic order.
    search
        .found
        .sort_by_key(|a| (!a.is_identity(), a.fork_map.clone()));
    search.found
}

struct Search<'a> {
    topology: &'a Topology,
    bundles: &'a HashMap<(u32, u32), Vec<PhilosopherId>>,
    /// Partial fork relabelling; `u32::MAX` marks "unassigned".
    fork_image: Vec<u32>,
    image_used: Vec<bool>,
    found: Vec<Automorphism>,
    limit: usize,
    budget: usize,
    num_philosophers: usize,
}

impl Search<'_> {
    /// Checks every arc bundle whose two endpoints are both assigned:
    /// its image pair must carry a bundle of the same size.
    fn partially_consistent(&self) -> bool {
        for (&(l, r), bundle) in self.bundles {
            let (il, ir) = (self.fork_image[l as usize], self.fork_image[r as usize]);
            if il == u32::MAX || ir == u32::MAX {
                continue;
            }
            let image_size = self.bundles.get(&(il, ir)).map_or(0, Vec::len);
            if image_size != bundle.len() {
                return false;
            }
        }
        true
    }

    fn assign(&mut self, fork: usize) {
        if self.found.len() >= self.limit || self.budget == 0 {
            return;
        }
        if fork == self.fork_image.len() {
            self.emit();
            return;
        }
        for image in 0..self.fork_image.len() {
            if self.image_used[image] {
                continue;
            }
            if self.topology.fork_degree(ForkId::new(fork as u32))
                != self.topology.fork_degree(ForkId::new(image as u32))
            {
                continue;
            }
            self.budget = self.budget.saturating_sub(1);
            if self.budget == 0 {
                return;
            }
            self.fork_image[fork] = image as u32;
            self.image_used[image] = true;
            if self.partially_consistent() {
                self.assign(fork + 1);
            }
            self.fork_image[fork] = u32::MAX;
            self.image_used[image] = false;
        }
    }

    /// A complete, consistent fork relabelling: derive the philosopher
    /// relabelling by matching each bundle onto its image bundle in
    /// increasing-identifier order.
    fn emit(&mut self) {
        let mut phil_map = vec![PhilosopherId::new(0); self.num_philosophers];
        for (&(l, r), bundle) in self.bundles {
            let image_key = (self.fork_image[l as usize], self.fork_image[r as usize]);
            let image_bundle = &self.bundles[&image_key];
            for (p, ip) in bundle.iter().zip(image_bundle.iter()) {
                phil_map[p.index()] = *ip;
            }
        }
        self.found.push(Automorphism {
            fork_map: self.fork_image.iter().map(|&f| ForkId::new(f)).collect(),
            phil_map,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{classic_ring, figure1_triangle, figure3_theta, star};

    /// Checks that `a` really is an orientation-preserving automorphism.
    fn verify(topology: &Topology, a: &Automorphism) {
        for p in topology.philosopher_ids() {
            let ends = topology.forks_of(p);
            let image = topology.forks_of(a.phil_map[p.index()]);
            assert_eq!(image.left, a.fork_map[ends.left.index()], "{a:?}");
            assert_eq!(image.right, a.fork_map[ends.right.index()], "{a:?}");
        }
        // Bijectivity.
        let mut seen_forks = vec![false; topology.num_forks()];
        for f in &a.fork_map {
            assert!(!seen_forks[f.index()]);
            seen_forks[f.index()] = true;
        }
        let mut seen_phils = vec![false; topology.num_philosophers()];
        for p in &a.phil_map {
            assert!(!seen_phils[p.index()]);
            seen_phils[p.index()] = true;
        }
    }

    #[test]
    fn classic_ring_has_exactly_its_rotations() {
        for n in [3usize, 4, 5, 7] {
            let ring = classic_ring(n).unwrap();
            let autos = automorphisms(&ring, 256);
            assert_eq!(autos.len(), n, "ring {n}");
            assert!(autos[0].is_identity());
            for a in &autos {
                verify(&ring, a);
                // A rotation by c maps fork f to f + c for a fixed c.
                let c = a.fork_map[0].raw();
                for (f, image) in a.fork_map.iter().enumerate() {
                    assert_eq!(image.raw(), (f as u32 + c) % n as u32);
                }
            }
        }
    }

    #[test]
    fn figure1_triangle_symmetries_are_found_and_valid() {
        // 3 forks, every oriented pair carrying one philosopher each way:
        // every fork permutation extends, giving the full S3 (order 6).
        let t = figure1_triangle();
        let autos = automorphisms(&t, 256);
        assert_eq!(autos.len(), 6);
        for a in &autos {
            verify(&t, a);
        }
    }

    #[test]
    fn theta_graph_automorphisms_are_valid() {
        let t = figure3_theta();
        let autos = automorphisms(&t, 256);
        assert!(!autos.is_empty());
        assert!(autos[0].is_identity());
        for a in &autos {
            verify(&t, a);
        }
    }

    #[test]
    fn star_automorphisms_fix_the_hub() {
        let t = star(5).unwrap();
        let autos = automorphisms(&t, 256);
        assert!(autos.len() > 1, "a star has leaf symmetries");
        for a in &autos {
            verify(&t, a);
        }
    }

    #[test]
    fn limit_is_respected_and_identity_is_first() {
        let ring = classic_ring(8).unwrap();
        let autos = automorphisms(&ring, 3);
        assert_eq!(autos.len(), 3);
        assert!(autos[0].is_identity());
        for a in &autos {
            verify(&ring, a);
        }
    }

    #[test]
    fn identity_constructor_round_trips() {
        let id = Automorphism::identity(4, 7);
        assert!(id.is_identity());
        assert_eq!(id.fork_map.len(), 4);
        assert_eq!(id.phil_map.len(), 7);
    }
}
