//! Error type for topology construction and validation.

use crate::{ForkId, PhilosopherId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`Topology`](crate::Topology).
///
/// Every variant corresponds to a violation of Definition 1 of the paper or
/// to a reference to a nonexistent component.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The system must contain at least two forks (`k >= 2`).
    TooFewForks {
        /// Number of forks that were actually declared.
        found: usize,
    },
    /// The system must contain at least one philosopher (`n >= 1`).
    NoPhilosophers,
    /// A philosopher was declared with `left == right`; Definition 1 requires
    /// each philosopher to be connected to two *distinct* forks.
    DegenerateArc {
        /// The philosopher whose two endpoints coincide.
        philosopher: PhilosopherId,
        /// The fork used for both endpoints.
        fork: ForkId,
    },
    /// A philosopher refers to a fork that was never declared.
    UnknownFork {
        /// The philosopher holding the dangling reference.
        philosopher: PhilosopherId,
        /// The missing fork.
        fork: ForkId,
    },
    /// A parameter of a topology generator was out of its documented range.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        message: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooFewForks { found } => {
                write!(f, "a system needs at least 2 forks, found {found}")
            }
            TopologyError::NoPhilosophers => {
                write!(f, "a system needs at least 1 philosopher")
            }
            TopologyError::DegenerateArc { philosopher, fork } => write!(
                f,
                "philosopher {philosopher} uses fork {fork} for both left and right; \
                 a philosopher must connect two distinct forks"
            ),
            TopologyError::UnknownFork { philosopher, fork } => write!(
                f,
                "philosopher {philosopher} refers to undeclared fork {fork}"
            ),
            TopologyError::InvalidParameter { message } => {
                write!(f, "invalid topology parameter: {message}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errors: Vec<TopologyError> = vec![
            TopologyError::TooFewForks { found: 1 },
            TopologyError::NoPhilosophers,
            TopologyError::DegenerateArc {
                philosopher: PhilosopherId::new(2),
                fork: ForkId::new(5),
            },
            TopologyError::UnknownFork {
                philosopher: PhilosopherId::new(0),
                fork: ForkId::new(9),
            },
            TopologyError::InvalidParameter {
                message: "ring size must be at least 3".to_string(),
            },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
