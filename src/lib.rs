//! # gdp — generalized dining philosophers
//!
//! A reproduction of Herescu & Palamidessi, *On the generalized dining
//! philosophers problem* (PODC 2001): randomized, symmetric, fully
//! distributed resource allocation on arbitrary conflict topologies.
//!
//! This umbrella crate re-exports the whole workspace through
//! [`gdp_core`]'s prelude.  See `README.md` for a tour, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the reproduced results.
//!
//! ```
//! use gdp::prelude::*;
//!
//! // GDP2 on the paper's Figure 3 theta graph: everyone eventually eats.
//! let mut engine = Engine::new(builders::figure3_theta(), Gdp2::new(), SimConfig::default());
//! let outcome = engine.run(
//!     &mut UniformRandomAdversary::new(7),
//!     StopCondition::EveryoneEats { times: 1, max_steps: 500_000 },
//! );
//! assert!(outcome.everyone_ate());
//! ```

#![forbid(unsafe_code)]

pub use gdp_core::*;

/// Re-export of the full prelude (see [`gdp_core::prelude`]).
pub mod prelude {
    pub use gdp_core::prelude::*;
}
