//! `gdp` — the command-line workbench for the generalized dining
//! philosophers workspace.
//!
//! Eight subcommands make the whole repo drivable without writing Rust:
//!
//! * `gdp list` — the catalog of topology families, algorithms and
//!   adversaries a sweep can name;
//! * `gdp run` — one detailed simulation of a single *family × size ×
//!   algorithm × adversary* cell;
//! * `gdp sweep` — a full scenario grid through the parallel Monte-Carlo
//!   machinery, streamed to the console and written to JSON + CSV; with
//!   `--store` every completed cell checkpoints to a durable
//!   content-addressed store, `--resume` skips verified-complete cells and
//!   `--shard i/n` runs one deterministic partition of the grid;
//! * `gdp merge` — fuse shard stores into the artifacts an unsharded sweep
//!   would have written, byte for byte, without recomputing;
//! * `gdp check` — the **exact** model checker (`gdp-mcheck`): worst-case
//!   verdicts over every fair adversary and every random draw, emitted as
//!   byte-reproducible certificates (see `docs/VERIFICATION.md`); with
//!   `--store` the certificates persist to the cell store's certificate
//!   cache and `--resume` answers warm checks from disk, byte-identically;
//! * `gdp store` — store lifecycle: `gc` retires records whose spec
//!   context matches no manifest line, `compact` rewrites live records
//!   into a fresh directory, dropping quarantine debris and stale tmp
//!   files behind an atomic swap;
//! * `gdp stress` — one cell on **real contending OS threads** through the
//!   algorithm-generic `gdp-runtime`, with watchdog-bounded runs and
//!   JSON/CSV stress reports (see `docs/RUNTIME.md`);
//! * `gdp serve` — the long-running cache-answering service (`gdp-serve`):
//!   sweep specs over a line-delimited JSON TCP protocol, cache hits
//!   straight from a shared cell store, misses on a bounded worker pool,
//!   graceful drain on SIGTERM/ctrl-c (see `docs/SERVE.md`).
//!
//! Exit codes: `0` success / certified, `1` violation detected (safety
//! breach, true deadlock, or a failed liveness check), `2` usage error,
//! `3` inconclusive (state budget exhausted).
//!
//! Argument parsing is hand-rolled: the build container is offline, so the
//! workspace carries no CLI dependency.  See `docs/SCENARIOS.md` for the
//! spec format and `README.md` for a quickstart.

use gdp::prelude::*;
use gdp_observe::{jsonl, Event, EventSink, MemorySink, MetricsRegistry, SharedSink};
use gdp_scenarios::{
    compact_store, gc_store, merge_stores, run_check, run_check_cached, run_stress_observed,
    run_sweep_durable, run_sweep_with, AdversaryKind, CellStore, CheckAdversarySpec, CheckSpec,
    CheckTargetSpec, CheckVerdict, MergeError, ScenarioSpec, SeedPolicy, ShardSpec, StressLoad,
    StressSpec, SweepOptions, TopologyFamily, ADVERSARY_CATALOG, FAMILY_CATALOG,
};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The actor an event belongs to, for the `(actor, clock)` export order of
/// real-thread traces; actor-free events (the sweep's cell/store lifecycle)
/// sort last.
fn event_actor(event: &Event) -> u32 {
    match event {
        Event::Schedule { actor, .. }
        | Event::Acquire { actor, .. }
        | Event::Release { actor, .. }
        | Event::MealStart { actor, .. }
        | Event::MealFinish { actor, .. }
        | Event::Crash { actor, .. }
        | Event::Watchdog { actor, .. } => *actor,
        _ => u32::MAX,
    }
}

/// What a successfully parsed-and-executed command asks the process to
/// report.
enum CommandOutcome {
    /// Everything held.
    Ok,
    /// A violation was detected (safety breach, deadlock, failed check).
    Violation(String),
    /// An exact check ran out of state budget before reaching a verdict.
    Inconclusive(String),
}

const USAGE: &str = "\
gdp — generalized dining philosophers workbench (Herescu & Palamidessi, PODC 2001)

USAGE:
    gdp list
        Print the topology families, algorithms and adversaries.

    gdp run [OPTIONS]
        Run one simulation and print its metrics.
          --topology <family>    topology family spec        [default: ring]
          --size <n>             family scale parameter      [default: 6]
          --algorithm <name>     lr1|lr2|gdp1|gdp2|ordered   [default: gdp1]
          --adversary <spec>     scheduler spec              [default: uniform-random]
          --steps <n>            step budget                 [default: 40000]
          --seed <n>             random seed                 [default: 0]
          --trace <path>         write the JSONL event trace; bytes are a pure
                                 function of the spec (see docs/OBSERVABILITY.md)
          --threads <n>          trace-encoding workers, 0 = all cores; the
                                 trace bytes are identical for every value [default: 0]

    gdp check [OPTIONS]
        Exactly model-check one cell: build the MDP of the probabilistic
        automaton (adversary choices x random draws) and certify or refute
        the objective over every fair adversary.  The certificate on stdout
        is byte-reproducible and identical for every --threads value.
          --family <family>      topology family spec        [default: ring]
          --size <n>             family scale parameter      [default: 4]
          --algorithm <name>     algorithm to check          [default: gdp1]
          --target <t>           progress|lockout|philosopher:<i> [default: progress]
          --adversary <class>    fair|kbounded:<k>|crash:<f> [default: fair]
          --max-states <n>       canonical-state budget      [default: 6000000]
          --threads <n>          0 = all cores               [default: 0]
          --symmetry <on|off>    quotient symmetric states   [default: auto]
          --expected-steps       also compute exact E[steps to first meal]
          --counterexample <p>   write the starvation lasso as Graphviz DOT
          --store <dir>          persist the certificates to the store's
                                 certificate cache (crash-safe, checksummed)
          --resume               answer the check from a verified certificate
                                 record when one exists — the stdout report is
                                 byte-identical to recomputing (requires
                                 --store; incompatible with --counterexample,
                                 which needs the lasso the cache drops)

    gdp stress [OPTIONS]
        Run one cell on real contending OS threads (gdp-runtime) and write a
        JSON + CSV stress report.  All six algorithms are runnable; the
        naive baseline genuinely deadlocks and is bounded by the watchdog.
          --family <family>      topology family spec        [default: ring]
          --n <n>                family scale parameter      [default: 5]
          --algorithm <name>     lr1|lr2|gdp1|gdp2|ordered|naive [default: gdp2]
          --threads <n>          driven seats, 0 = all philosophers [default: 0]
          --meals <n>            meal budget per seat        [default: 50]
          --duration-ms <ms>     run for wall-clock time instead of a budget
          --watchdog-ms <ms>     whole-run bound, 0 = none
                                 [default: 30000; with --duration-ms: 0]
          --adversary <spec>     catalog spec; crash:<f> injects f seeded
                                 crash-stop seats (reset_trying recovery),
                                 fair families defer to the OS scheduler
          --spin <iters>         critical-section spin work  [default: 64]
          --seed <n>             topology + randomness seed  [default: 0]
          --json <path>          JSON output                 [default: gdp_stress.json]
          --csv <path>           CSV output                  [default: gdp_stress.csv]
          --timing               embed wall-clock fields (throughput, wait
                                 histogram, first-meal percentiles) in the
                                 artifacts
          --trace <path>         write a JSONL event trace, sorted by
                                 (actor, clock); real-thread interleaving makes
                                 it a measurement, not a reproducible fixture

    gdp sweep [OPTIONS]
        Run a scenario grid (families x sizes x algorithms) and write JSON + CSV.
          --families <a,b,..>    family specs     [default: ring,torus,complete,star,barbell,random-regular:3]
          --sizes <n,m,..>       scale parameters [default: 6,12]
          --algorithms <a,b,..>  algorithms       [default: lr1,gdp1]
          --adversary <spec>     scheduler spec   [default: uniform-random]
          --trials <n>           trials per cell  [default: 20]
          --steps <n>            steps per trial  [default: 40000]
          --seed <n>             base seed        [default: 0]
          --seed-policy <p>      per-cell|shared  [default: per-cell]
          --threads <n>          worker threads, n >= 1 (omit for all cores)
          --json <path>          JSON output      [default: gdp_sweep.json]
          --csv <path>           CSV output       [default: gdp_sweep.csv]
          --name <name>          sweep name       [default: sweep]
          --timing               embed wall-clock steps/sec in the artifacts
                                 (incompatible with --store)
          --quiet                no per-cell console rows
          --check                attach exact worst-case progress verdicts
          --check-states <n>     state budget per exact verdict [default: 400000]
          --store <dir>          checkpoint every completed cell to a durable
                                 content-addressed store (crash-safe)
          --resume               reuse verified-complete store cells; corrupt
                                 records are quarantined and recomputed
                                 (requires --store)
          --shard <i>/<n>        run only the i-th of n deterministic grid
                                 partitions, 1-based (requires --store)
        With --check and --store, every exact verdict also persists as a
        certificate record; --resume restores exact columns from those
        records even when the MC cell record is gone.

    gdp store gc [OPTIONS]
        Retire store records whose spec context matches no manifest line.
        The manifest is a plain-text file of retained spec-context lines —
        `cat <dir>/*.context` emits one per spec that ever wrote to the
        store; keep the lines you still need and gc the rest.
          --store <dir>          the store directory            (required)
          --manifest <file>     spec contexts to retain, one per line
                                 (blank lines and # comments skipped)
          --dry-run              report what would be retired, delete nothing

    gdp store compact [OPTIONS]
        Rewrite every live record into a fresh directory, dropping
        quarantine debris and stale tmp files, then atomically swap it in.
        Every record is re-verified and byte-compared during the rewrite;
        a record from a newer store format aborts the compaction.
          --store <dir>          the store directory            (required)

    gdp merge [OPTIONS]
        Fuse shard stores into the exact JSON + CSV artifacts the unsharded
        sweep would have written, byte for byte, without recomputing.  Pass
        the same grid flags as the original sweep (--name, --families,
        --sizes, --algorithms, --adversary, --trials, --steps, --seed,
        --seed-policy, --check/--check-states) plus one --store per shard.
          --store <dir>          a shard's store directory (repeatable)
          --json <path>          JSON output      [default: gdp_sweep.json]
          --csv <path>           CSV output       [default: gdp_sweep.csv]
          --quiet                no console summary

    gdp serve [OPTIONS]
        Run the cache-answering sweep service: a line-delimited JSON TCP
        protocol (ping | metrics | sweep | shutdown) answering cache hits
        from the cell store and computing misses on a bounded worker pool.
        Streams per-cell results in deterministic grid order with a
        digest-carrying summary footer; drains gracefully (exit 0) on
        SIGTERM/ctrl-c or a shutdown request.  See docs/SERVE.md.
          --addr <host:port>     bind address     [default: 127.0.0.1:7878]
                                 (port 0 picks a free port; the resolved
                                 address is printed on the listening line)
          --store <dir>          shared cell-store directory
                                 [default: gdp_serve_store]
          --workers <n>          compute workers, 0 = all cores [default: 0]
          --queue <n>            bound on queued compute jobs; beyond it,
                                 sweep requests get a retryable error
                                 [default: 256]

Adversary specs (the full catalog, see `gdp list` / docs/ADVERSARIES.md):
round-robin | uniform-random | max-wait | kbounded:<k> | blocking |
blocking:<bound> | greedy-conflict | greedy-conflict:<bound> | crash:<f>.
Results are bitwise-identical for every --threads value (PR-1 determinism
contract); by default the JSON/CSV artifacts are also byte-reproducible
across runs — pass --timing to trade that for embedded throughput figures.

run and sweep exit 1 when a trial ends in a true deadlock or breaks a
safety invariant; merge exits 1 when cells are missing from every store or
when two stores hold valid records that disagree byte-for-byte (a
determinism violation); check exits 1 on a violated objective and 3 when
the state budget truncated the model before a verdict.  See
docs/SCENARIOS.md for the crash-safe store layout and the
resume/shard/merge walkthrough.
";

/// A tiny hand-rolled flag parser: `--flag value` pairs plus boolean flags.
struct Args {
    argv: Vec<String>,
}

impl Args {
    fn new(argv: Vec<String>) -> Self {
        Args { argv }
    }

    /// Consumes `--flag value` and returns the value.
    fn value_of(&mut self, flag: &str) -> Result<Option<String>, String> {
        match self.argv.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => {
                if i + 1 >= self.argv.len() || self.argv[i + 1].starts_with("--") {
                    return Err(format!("flag {flag} needs a value"));
                }
                let value = self.argv.remove(i + 1);
                self.argv.remove(i);
                Ok(Some(value))
            }
        }
    }

    /// Consumes every occurrence of `--flag value`, in order.
    fn values_of(&mut self, flag: &str) -> Result<Vec<String>, String> {
        let mut values = Vec::new();
        while let Some(value) = self.value_of(flag)? {
            values.push(value);
        }
        Ok(values)
    }

    /// Consumes a boolean `--flag`.
    fn has(&mut self, flag: &str) -> bool {
        match self.argv.iter().position(|a| a == flag) {
            None => false,
            Some(i) => {
                self.argv.remove(i);
                true
            }
        }
    }

    /// Errors on any unconsumed argument.
    fn finish(self) -> Result<(), String> {
        if let Some(stray) = self.argv.first() {
            return Err(format!("unrecognized argument {stray:?}"));
        }
        Ok(())
    }
}

fn parse<T: std::str::FromStr>(what: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("invalid {what} {value:?}: {e}"))
}

fn parse_list<T: std::str::FromStr>(what: &str, value: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    let items: Vec<T> = value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(what, s))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(format!("the {what} list is empty"));
    }
    Ok(items)
}

fn cmd_list() -> Result<(), String> {
    println!("TOPOLOGY FAMILIES (--families / --topology; size n per family):");
    for entry in FAMILY_CATALOG {
        println!(
            "  {:<26} {:<38} {}",
            entry.spec, entry.size_meaning, entry.description
        );
    }
    println!();
    println!("ALGORITHMS (--algorithms / --algorithm):");
    for kind in AlgorithmKind::all() {
        println!("  {:<26} {}", kind.name(), kind.description());
    }
    println!();
    println!("ADVERSARIES (--adversary; catalog in docs/ADVERSARIES.md):");
    for entry in ADVERSARY_CATALOG {
        println!(
            "  {:<26} {:<24} {}",
            entry.spec,
            entry.fairness.name(),
            entry.description
        );
    }
    println!();
    println!("EXACT ADVERSARY CLASSES (gdp check --adversary):");
    println!("  fair                       all fair schedulers (the paper's default)");
    println!("  kbounded:<k>               only k-bounded-fair schedulers (product MDP)");
    println!("  crash:<f>                  fair scheduling + up to f crash-stop faults");
    Ok(())
}

fn cmd_run(mut args: Args) -> Result<CommandOutcome, String> {
    let family: TopologyFamily = parse(
        "topology family",
        &args
            .value_of("--topology")?
            .unwrap_or_else(|| "ring".into()),
    )?;
    let size: usize = parse(
        "size",
        &args.value_of("--size")?.unwrap_or_else(|| "6".into()),
    )?;
    let algorithm: AlgorithmKind = parse(
        "algorithm",
        &args
            .value_of("--algorithm")?
            .unwrap_or_else(|| "gdp1".into()),
    )?;
    let adversary: AdversaryKind = parse(
        "adversary",
        &args
            .value_of("--adversary")?
            .unwrap_or_else(|| "uniform-random".into()),
    )?;
    let steps: u64 = parse(
        "step budget",
        &args.value_of("--steps")?.unwrap_or_else(|| "40000".into()),
    )?;
    let seed: u64 = parse(
        "seed",
        &args.value_of("--seed")?.unwrap_or_else(|| "0".into()),
    )?;
    let trace_path = args.value_of("--trace")?;
    let trace_threads: usize = parse(
        "thread count",
        &args.value_of("--threads")?.unwrap_or_else(|| "0".into()),
    )?;
    args.finish()?;

    let topology = family
        .build(size, seed)
        .map_err(|e| format!("cannot build {} at n={size}: {e}", family.name()))?;
    println!(
        "topology {} (n={size}): {}",
        family.name(),
        topology.summary()
    );
    let mut engine = Engine::new(
        topology,
        algorithm.program(),
        SimConfig::default().with_seed(seed),
    );
    let sink = trace_path.as_ref().map(|_| Arc::new(MemorySink::new()));
    if let Some(sink) = &sink {
        let shared: SharedSink = sink.clone();
        engine.set_event_sink(Some(shared));
    }
    let mut adv = adversary.build(seed, 0);
    let outcome = engine.run(&mut adv, StopCondition::MaxSteps(steps));
    let metrics = RunMetrics::from_outcome(&outcome);
    println!(
        "run      {} under {} for {steps} steps (seed {seed})",
        algorithm.name(),
        adversary.name()
    );
    println!("metrics  {}", metrics.summary_line());
    for (i, meals) in outcome.meals_per_philosopher.iter().enumerate() {
        println!("         P{i}: {meals} meals");
    }

    // Observability: registry + trace export happen *before* the safety and
    // deadlock probes below — `is_stuck` explores by stepping scratch
    // copies of the engine, and those probe steps must not leak into the
    // trace.  The sink is detached for the same reason.
    let total_meals: u64 = outcome.meals_per_philosopher.iter().sum();
    let mut registry = MetricsRegistry::new();
    registry.counter_add("sim.steps", engine.step_count());
    registry.counter_add("sim.meals", total_meals);
    registry.install_histogram(
        "sim.first_meal_steps",
        engine.first_meal_histogram().clone(),
    );
    registry.install_histogram(
        "sim.inter_meal_steps",
        engine.inter_meal_histogram().clone(),
    );
    let first_meal = registry
        .histogram("sim.first_meal_steps")
        .expect("installed above");
    if !first_meal.is_empty() {
        println!(
            "observe  first-meal steps p50={:.0} p90={:.0} p99={:.0} over {} eater(s) \
             (log2-bucket floor estimate, e <= t < max(2e, 2))",
            first_meal.quantile(50.0),
            first_meal.quantile(90.0),
            first_meal.quantile(99.0),
            first_meal.total(),
        );
    }
    engine.set_event_sink(None);
    if let (Some(path), Some(sink)) = (&trace_path, &sink) {
        let events = sink.take();
        let mut body = jsonl::encode_events_chunked(&events, trace_threads);
        // A self-describing footer: the final state fingerprint lets a
        // replay (ReplayAdversary over the schedule events) verify it
        // reached the same state.
        body.push_str(&format!(
            "{{\"clock\":{},\"type\":\"summary\",\"algorithm\":\"{}\",\"seed\":{},\
             \"steps\":{},\"meals\":{},\"fingerprint\":\"{:016x}\"}}\n",
            engine.step_count(),
            algorithm.name(),
            seed,
            engine.step_count(),
            total_meals,
            engine.state_fingerprint(),
        ));
        std::fs::write(path, &body).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {} trace events to {path}", events.len());
    }

    let safe = state_is_safe(&engine);
    let stuck = engine.is_stuck();
    if !safe {
        return Ok(CommandOutcome::Violation(
            "final state violates the safety invariants".to_string(),
        ));
    }
    if stuck {
        return Ok(CommandOutcome::Violation(format!(
            "final state is a true deadlock: no scheduling choice and no random \
             outcome can ever unblock it (step {})",
            engine.step_count()
        )));
    }
    Ok(CommandOutcome::Ok)
}

fn cmd_check(mut args: Args) -> Result<CommandOutcome, String> {
    let family: TopologyFamily = parse(
        "topology family",
        &args
            .value_of("--family")?
            .or(args.value_of("--topology")?)
            .unwrap_or_else(|| "ring".into()),
    )?;
    let size: usize = parse(
        "size",
        &args.value_of("--size")?.unwrap_or_else(|| "4".into()),
    )?;
    let algorithm: AlgorithmKind = parse(
        "algorithm",
        &args
            .value_of("--algorithm")?
            .unwrap_or_else(|| "gdp1".into()),
    )?;
    let target: CheckTargetSpec = parse(
        "target",
        &args
            .value_of("--target")?
            .unwrap_or_else(|| "progress".into()),
    )?;
    let max_states: usize = parse(
        "state budget",
        &args
            .value_of("--max-states")?
            .unwrap_or_else(|| "6000000".into()),
    )?;
    let threads: usize = parse(
        "thread count",
        &args.value_of("--threads")?.unwrap_or_else(|| "0".into()),
    )?;
    let symmetry = match args.value_of("--symmetry")?.as_deref() {
        None | Some("auto") => None,
        Some("on") => Some(true),
        Some("off") => Some(false),
        Some(other) => {
            return Err(format!(
                "invalid --symmetry {other:?}: expected on, off or auto"
            ))
        }
    };
    let expected_steps = args.has("--expected-steps");
    let counterexample_path = args.value_of("--counterexample")?;
    let adversary: CheckAdversarySpec = parse(
        "adversary class",
        &args
            .value_of("--adversary")?
            .unwrap_or_else(|| "fair".into()),
    )?;
    let seed: u64 = parse(
        "seed",
        &args.value_of("--seed")?.unwrap_or_else(|| "0".into()),
    )?;
    let store_dir = args.value_of("--store")?;
    let resume = args.has("--resume");
    args.finish()?;

    if resume && store_dir.is_none() {
        return Err("--resume needs a store; usage: gdp check --store <dir> --resume".to_string());
    }
    if resume && counterexample_path.is_some() {
        return Err(
            "--counterexample needs the starvation lasso, which certificate records \
             do not carry; drop --resume to recompute the check"
                .to_string(),
        );
    }

    let spec = CheckSpec {
        family,
        size,
        algorithm,
        target,
        max_states,
        threads,
        symmetry,
        expected_steps,
        topology_seed: seed,
        adversary,
    };
    if expected_steps && adversary != CheckAdversarySpec::AllFair {
        println!(
            "note     --expected-steps applies only to the unrestricted class \
             (--adversary fair); skipping it for this restricted check"
        );
    }
    let report = match &store_dir {
        Some(dir) => {
            let store =
                CellStore::open_bare(dir).map_err(|e| format!("opening store {dir}: {e}"))?;
            let (report, stats) =
                run_check_cached(&spec, &store, resume).map_err(|e| e.to_string())?;
            // Stderr, not stdout: the certificate report on stdout stays
            // byte-identical whether the answer came from disk or from a
            // fresh state-space exploration.
            eprintln!(
                "store    reused certificates: {}, computed certificates: {}, \
                 quarantined: {} ({dir})",
                stats.reused, stats.computed, stats.quarantined
            );
            report
        }
        None => run_check(&spec)?,
    };
    print!("{}", report.render());
    if let Some(path) = counterexample_path {
        match &report.counterexample_dot {
            Some(dot) => {
                std::fs::write(&path, dot).map_err(|e| format!("writing {path}: {e}"))?;
                println!("wrote counterexample DOT to {path}");
            }
            None => println!("no counterexample to write to {path}"),
        }
    }
    Ok(match report.verdict() {
        CheckVerdict::Certified => CommandOutcome::Ok,
        CheckVerdict::Violated => {
            CommandOutcome::Violation(format!("check violated for {}", report.cell))
        }
        CheckVerdict::Inconclusive => CommandOutcome::Inconclusive(format!(
            "state budget ({max_states}) exhausted before a verdict for {}",
            report.cell
        )),
    })
}

fn cmd_stress(mut args: Args) -> Result<CommandOutcome, String> {
    let family: TopologyFamily = parse(
        "topology family",
        &args.value_of("--family")?.unwrap_or_else(|| "ring".into()),
    )?;
    let size: usize = parse(
        "size",
        &args
            .value_of("--n")?
            .or(args.value_of("--size")?)
            .unwrap_or_else(|| "5".into()),
    )?;
    let algorithm: AlgorithmKind = parse(
        "algorithm",
        &args
            .value_of("--algorithm")?
            .unwrap_or_else(|| "gdp2".into()),
    )?;
    let threads: usize = parse(
        "thread count",
        &args.value_of("--threads")?.unwrap_or_else(|| "0".into()),
    )?;
    let duration_ms: Option<u64> = args
        .value_of("--duration-ms")?
        .map(|v| parse("duration", &v))
        .transpose()?;
    let meals: u64 = parse(
        "meal budget",
        &args.value_of("--meals")?.unwrap_or_else(|| "50".into()),
    )?;
    let load = match duration_ms {
        Some(ms) => StressLoad::DurationMs(ms),
        None => StressLoad::MealsPerSeat(meals),
    };
    // In duration mode the deadline itself bounds the run, so the watchdog
    // defaults to off unless explicitly requested; an explicit shorter
    // watchdog cuts a duration run short and reports as tripped.
    let watchdog_ms: u64 = match (args.value_of("--watchdog-ms")?, duration_ms) {
        (Some(value), _) => parse("watchdog", &value)?,
        (None, Some(_)) => 0,
        (None, None) => 30_000,
    };
    let spin: u32 = parse(
        "spin count",
        &args.value_of("--spin")?.unwrap_or_else(|| "64".into()),
    )?;
    let seed: u64 = parse(
        "seed",
        &args.value_of("--seed")?.unwrap_or_else(|| "0".into()),
    )?;
    // Any catalog family is accepted: the crash-stop family shapes the load
    // (seeded crash-stop seats recovering through reset_trying); for every
    // fair family the OS scheduler itself stands in — real threads cannot
    // be steered step-by-step, which is the point of the stress layer.
    let adversary: AdversaryKind = parse(
        "adversary",
        &args
            .value_of("--adversary")?
            .unwrap_or_else(|| "uniform-random".into()),
    )?;
    let crash_seats = match adversary {
        AdversaryKind::CrashStop { crashes } => crashes as usize,
        _ => 0,
    };
    let json_path = args
        .value_of("--json")?
        .unwrap_or_else(|| "gdp_stress.json".into());
    let csv_path = args
        .value_of("--csv")?
        .unwrap_or_else(|| "gdp_stress.csv".into());
    let timing = args.has("--timing");
    let trace_path = args.value_of("--trace")?;
    args.finish()?;

    let spec = StressSpec {
        family,
        size,
        algorithm,
        threads,
        load,
        watchdog_ms,
        seed,
        spin,
        crash_seats,
    };
    println!(
        "stress   {} x {} driven seats, load {}, watchdog {}ms (seed {seed}{})",
        spec.cell(),
        if threads == 0 {
            "all".to_string()
        } else {
            threads.to_string()
        },
        spec.load.name(),
        watchdog_ms,
        if crash_seats > 0 {
            format!(", {crash_seats} crash-stop seat(s)")
        } else {
            String::new()
        },
    );
    if crash_seats == 0 && adversary != AdversaryKind::UniformRandom {
        println!(
            "note     fair adversary families are subsumed by the OS scheduler on real \
             threads; only crash:<f> shapes a stress load (see docs/ADVERSARIES.md)"
        );
    }
    let sink = trace_path.as_ref().map(|_| Arc::new(MemorySink::new()));
    let report = run_stress_observed(
        &spec,
        timing,
        sink.as_ref().map(|s| s.clone() as SharedSink),
    )?;
    println!(
        "result   {} philosophers / {} forks on real threads: {} meals total, \
         everyone_ate={}, watchdog_tripped={}, jain={:.4}{}",
        report.philosophers,
        report.forks,
        report.total_meals,
        report.everyone_ate,
        report.watchdog_tripped,
        report.jain_fairness,
        if report.crashed_seats.is_empty() {
            String::new()
        } else {
            format!(", crashed={:?}", report.crashed_seats)
        },
    );
    if let Some(t) = &report.timing {
        println!(
            "timing   {:.3}s elapsed, {:.0} meals/s, mean wait {:.1}us, \
             first meal p50={:.0}ns p90={:.0}ns p99={:.0}ns",
            t.elapsed_secs,
            t.meals_per_sec,
            t.mean_wait_micros,
            t.first_meal_p50,
            t.first_meal_p90,
            t.first_meal_p99,
        );
    }
    for (i, m) in report.meals.iter().enumerate() {
        println!("         P{i}: {m} meals");
    }
    report
        .write_json(&json_path)
        .map_err(|e| format!("writing {json_path}: {e}"))?;
    report
        .write_csv(&csv_path)
        .map_err(|e| format!("writing {csv_path}: {e}"))?;
    println!("wrote {json_path} and {csv_path}");
    if let (Some(path), Some(sink)) = (&trace_path, &sink) {
        // Real threads interleave nondeterministically, so the merged stream
        // is a measurement, not a fixture: sort by (actor, clock) so each
        // seat's per-seat sequence reads contiguously and in order.
        let mut events = sink.take();
        events.sort_by_key(|e| (event_actor(e), e.clock()));
        let body = jsonl::encode_events(&events);
        std::fs::write(path, &body).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {} trace events to {path}", events.len());
    }
    if !report.succeeded() {
        return Ok(CommandOutcome::Violation(format!(
            "stress cell {} {}",
            report.cell,
            if report.watchdog_tripped {
                "tripped the watchdog before every seat finished its budget"
            } else {
                "left at least one driven philosopher unfed"
            }
        )));
    }
    Ok(CommandOutcome::Ok)
}

/// Parses the scenario-grid flags shared by `gdp sweep` and `gdp merge`
/// (`gdp merge` must rebuild the *same* spec to address the shard stores
/// and reproduce the report header byte for byte).
fn scenario_spec_from_args(args: &mut Args) -> Result<ScenarioSpec, String> {
    let mut spec = ScenarioSpec::new(
        args.value_of("--name")?
            .unwrap_or_else(|| "sweep".to_string()),
    );
    if let Some(families) = args.value_of("--families")? {
        spec.families = parse_list("topology family", &families)?;
    }
    if let Some(sizes) = args.value_of("--sizes")? {
        spec.sizes = parse_list("size", &sizes)?;
    }
    if let Some(algorithms) = args.value_of("--algorithms")? {
        spec.algorithms = parse_list("algorithm", &algorithms)?;
    }
    if let Some(adversary) = args.value_of("--adversary")? {
        spec.adversary = parse("adversary", &adversary)?;
    }
    if let Some(trials) = args.value_of("--trials")? {
        spec.trials = parse("trial count", &trials)?;
    }
    if let Some(steps) = args.value_of("--steps")? {
        spec.max_steps = parse("step budget", &steps)?;
    }
    if let Some(threads) = args.value_of("--threads")? {
        let threads: usize = parse("thread count", &threads)?;
        if threads == 0 {
            return Err(
                "--threads 0 is not a thread count; pass --threads <n> with n >= 1, \
                 or omit the flag to use all cores"
                    .to_string(),
            );
        }
        spec.threads = threads;
    }
    let base_seed: u64 = parse(
        "seed",
        &args.value_of("--seed")?.unwrap_or_else(|| "0".into()),
    )?;
    spec.seed_policy = match args
        .value_of("--seed-policy")?
        .unwrap_or_else(|| "per-cell".into())
        .as_str()
    {
        "per-cell" => SeedPolicy::PerCell(base_seed),
        "shared" => SeedPolicy::Shared(base_seed),
        other => {
            return Err(format!(
                "invalid seed policy {other:?}: expected per-cell or shared"
            ))
        }
    };
    Ok(spec)
}

/// Parses `--check` / `--check-states` into the exact-check budget shared
/// by `gdp sweep` and `gdp merge`.
fn exact_check_from_args(args: &mut Args) -> Result<Option<usize>, String> {
    if args.has("--check") {
        Ok(Some(parse(
            "exact-check state budget",
            &args
                .value_of("--check-states")?
                .unwrap_or_else(|| "400000".into()),
        )?))
    } else {
        Ok(None)
    }
}

/// Maps a sweep/merge report onto the process outcome: exit 1 when any
/// cell observed a hard violation.
fn report_outcome(report: &gdp_scenarios::SweepReport) -> CommandOutcome {
    if report.violation_detected() {
        let offenders: Vec<&str> = report
            .cells
            .iter()
            .filter(|c| c.violation_detected())
            .map(|c| c.cell.as_str())
            .collect();
        return CommandOutcome::Violation(format!(
            "deadlock or safety violation detected in: {}",
            offenders.join(", ")
        ));
    }
    CommandOutcome::Ok
}

/// A sweep-local [`EventSink`] that tallies just the certificate-cache
/// events, for the `certs` console line of `gdp sweep --check --store`.
#[derive(Default)]
struct CertCounter {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EventSink for CertCounter {
    fn record(&self, event: &Event) {
        match event {
            Event::CertHit { .. } => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            Event::CertMiss { .. } => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

fn cmd_sweep(mut args: Args) -> Result<CommandOutcome, String> {
    let spec = scenario_spec_from_args(&mut args)?;
    let json_path = args
        .value_of("--json")?
        .unwrap_or_else(|| "gdp_sweep.json".into());
    let csv_path = args
        .value_of("--csv")?
        .unwrap_or_else(|| "gdp_sweep.csv".into());
    let exact_check = exact_check_from_args(&mut args)?;
    let store_dir = args.value_of("--store")?;
    let resume = args.has("--resume");
    let shard_arg = args.value_of("--shard")?;
    let cert_counter =
        (exact_check.is_some() && store_dir.is_some()).then(|| Arc::new(CertCounter::default()));
    let options = SweepOptions {
        record_timing: args.has("--timing"),
        progress: !args.has("--quiet"),
        exact_check,
        sink: cert_counter.clone().map(|c| c as SharedSink),
    };
    args.finish()?;

    if resume && store_dir.is_none() {
        return Err("--resume needs a store; usage: gdp sweep --store <dir> --resume".to_string());
    }
    if shard_arg.is_some() && store_dir.is_none() {
        return Err("--shard needs a store to deposit its partition in; \
             usage: gdp sweep --store <dir> --shard <i>/<n>"
            .to_string());
    }
    if options.record_timing && store_dir.is_some() {
        return Err(
            "--timing embeds wall-clock figures, which would break the store's \
             byte-reproducibility; drop --timing or --store"
                .to_string(),
        );
    }
    let shard: Option<ShardSpec> = shard_arg.map(|s| parse("shard spec", &s)).transpose()?;

    println!("{}", spec.summary());
    let report = match &store_dir {
        Some(dir) => {
            let store = CellStore::open(dir, &spec, options.exact_check)
                .map_err(|e| format!("opening store {dir}: {e}"))?;
            let (report, stats) =
                run_sweep_durable(&spec, &options, Some(&store), resume, shard, |_| {})
                    .map_err(|e| format!("sweep failed: {e}"))?;
            println!("store    {stats} ({dir})");
            if let Some(certs) = &cert_counter {
                println!(
                    "certs    {} reused certificates, {} computed certificates ({dir})",
                    certs.hits.load(Ordering::Relaxed),
                    certs.misses.load(Ordering::Relaxed),
                );
            }
            report
        }
        None => {
            run_sweep_with(&spec, &options, |_| {}).map_err(|e| format!("sweep failed: {e}"))?
        }
    };
    report
        .write_json(&json_path)
        .map_err(|e| format!("writing {json_path}: {e}"))?;
    report
        .write_csv(&csv_path)
        .map_err(|e| format!("writing {csv_path}: {e}"))?;
    println!(
        "wrote {json_path} and {csv_path} ({} cells)",
        report.cells.len()
    );
    Ok(report_outcome(&report))
}

fn cmd_merge(mut args: Args) -> Result<CommandOutcome, String> {
    let spec = scenario_spec_from_args(&mut args)?;
    let json_path = args
        .value_of("--json")?
        .unwrap_or_else(|| "gdp_sweep.json".into());
    let csv_path = args
        .value_of("--csv")?
        .unwrap_or_else(|| "gdp_sweep.csv".into());
    let exact_check = exact_check_from_args(&mut args)?;
    let store_dirs = args.values_of("--store")?;
    // Accepted so a sweep argv can be replayed verbatim as a merge argv;
    // suppresses the console summary.
    let quiet = args.has("--quiet");
    args.finish()?;
    if store_dirs.is_empty() {
        return Err(
            "gdp merge needs at least one store; usage: gdp merge --store <dir> [--store <dir> ...]"
                .to_string(),
        );
    }

    let stores: Vec<CellStore> = store_dirs
        .iter()
        .map(|dir| {
            CellStore::open(dir, &spec, exact_check)
                .map_err(|e| format!("opening store {dir}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if !quiet {
        println!("{}", spec.summary());
    }
    let (report, stats) = match merge_stores(&spec, &stores) {
        Ok(merged) => merged,
        Err(err @ MergeError::Missing { .. }) => {
            return Ok(CommandOutcome::Violation(format!(
                "merge incomplete: {err}"
            )));
        }
        // Valid records that disagree byte-for-byte are a determinism
        // violation (exit 1, like a failed check), not a usage error:
        // name the offending store directories so the operator knows
        // which shards to re-examine.
        Err(MergeError::Mismatch {
            cell,
            first_store,
            other_store,
        }) => {
            return Ok(CommandOutcome::Violation(format!(
                "stores {} and {} hold valid records for cell {cell} that disagree \
                 byte-for-byte — cells are pure functions of (spec, key), so this is \
                 a determinism violation; re-run the offending shard or quarantine \
                 the bad record before merging",
                store_dirs[first_store], store_dirs[other_store],
            )));
        }
        Err(err) => return Err(format!("merge failed: {err}")),
    };
    if !quiet {
        // Same shape as the `store` line `gdp sweep --store` prints, so the
        // fused StoreStats of a sharded run reads exactly like the stats of
        // the unsharded sweep it reproduces.
        println!("store    {stats} ({})", store_dirs.join(", "));
    }
    report
        .write_json(&json_path)
        .map_err(|e| format!("writing {json_path}: {e}"))?;
    report
        .write_csv(&csv_path)
        .map_err(|e| format!("writing {csv_path}: {e}"))?;
    println!(
        "wrote {json_path} and {csv_path} ({} cells)",
        report.cells.len()
    );
    Ok(report_outcome(&report))
}

fn cmd_store(mut args: Args) -> Result<CommandOutcome, String> {
    if args.argv.first().is_none_or(|a| a.starts_with("--")) {
        return Err(
            "gdp store needs a subcommand; usage: gdp store gc|compact [OPTIONS]".to_string(),
        );
    }
    let subcommand = args.argv.remove(0);
    match subcommand.as_str() {
        "gc" => {
            let dir = args
                .value_of("--store")?
                .ok_or("gdp store gc needs --store <dir>")?;
            let manifest_path = args.value_of("--manifest")?.ok_or(
                "gdp store gc needs --manifest <file>: the spec-context lines to retain \
                 (cat the store's *.context files and keep the specs you still need)",
            )?;
            let dry_run = args.has("--dry-run");
            args.finish()?;
            let raw = std::fs::read_to_string(&manifest_path)
                .map_err(|e| format!("reading manifest {manifest_path}: {e}"))?;
            let manifest: Vec<String> = raw
                .lines()
                .map(str::trim)
                .filter(|line| !line.is_empty() && !line.starts_with('#'))
                .map(String::from)
                .collect();
            if manifest.is_empty() {
                return Err(format!(
                    "manifest {manifest_path} names no spec contexts; refusing a gc \
                     that would retire every record"
                ));
            }
            let report = gc_store(Path::new(&dir), &manifest, dry_run)
                .map_err(|e| format!("gc of store {dir}: {e}"))?;
            println!("store gc: {report} ({dir})");
            Ok(CommandOutcome::Ok)
        }
        "compact" => {
            let dir = args
                .value_of("--store")?
                .ok_or("gdp store compact needs --store <dir>")?;
            args.finish()?;
            let report = compact_store(Path::new(&dir))
                .map_err(|e| format!("compaction of store {dir}: {e}"))?;
            println!("store compact: {report} ({dir})");
            Ok(CommandOutcome::Ok)
        }
        other => Err(format!(
            "unknown store subcommand {other:?}; try gc or compact"
        )),
    }
}

fn cmd_serve(mut args: Args) -> Result<CommandOutcome, String> {
    let addr = args
        .value_of("--addr")?
        .unwrap_or_else(|| "127.0.0.1:7878".into());
    let store_dir = args
        .value_of("--store")?
        .unwrap_or_else(|| "gdp_serve_store".into());
    let workers: usize = parse(
        "worker count",
        &args.value_of("--workers")?.unwrap_or_else(|| "0".into()),
    )?;
    let queue_capacity: usize = parse(
        "queue capacity",
        &args.value_of("--queue")?.unwrap_or_else(|| "256".into()),
    )?;
    args.finish()?;
    if queue_capacity == 0 {
        return Err("--queue must be >= 1 (the bound is what makes rejection meaningful)".into());
    }
    gdp_serve::run_serve(gdp_serve::ServeConfig {
        addr,
        store_dir: store_dir.into(),
        workers,
        queue_capacity,
    })
    .map_err(|e| format!("serve failed: {e}"))?;
    Ok(CommandOutcome::Ok)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = argv.remove(0);
    let args = Args::new(argv);
    let result = match command.as_str() {
        "list" => {
            let r = cmd_list();
            args.finish().and(r).map(|()| CommandOutcome::Ok)
        }
        "run" => cmd_run(args),
        "sweep" => cmd_sweep(args),
        "merge" => cmd_merge(args),
        "check" => cmd_check(args),
        "stress" => cmd_stress(args),
        "store" => cmd_store(args),
        "serve" => cmd_serve(args),
        other => Err(format!("unknown command {other:?}; try `gdp --help`")),
    };
    match result {
        Ok(CommandOutcome::Ok) => ExitCode::SUCCESS,
        Ok(CommandOutcome::Violation(message)) => {
            eprintln!("violation: {message}");
            ExitCode::from(1)
        }
        Ok(CommandOutcome::Inconclusive(message)) => {
            eprintln!("inconclusive: {message}");
            ExitCode::from(3)
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
